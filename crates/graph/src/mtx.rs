//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! The paper's inputs come from the SuiteSparse matrix collection, which
//! distributes graphs in this format. Supporting it lets users run the
//! reproduction on the *original* inputs when they have them, instead of
//! the bundled synthetic stand-ins.

use std::collections::HashSet;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::num::IntErrorKind;

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Error parsing a Matrix Market stream.
#[derive(Debug)]
pub enum ParseMtxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents; the string describes it.
    Malformed(String),
    /// The `%%MatrixMarket` banner or the size line is incomplete
    /// (fewer fields than the format requires).
    TruncatedHeader {
        /// The offending header/size line.
        line: String,
    },
    /// A data line names a vertex outside `1..=vertices` — including
    /// indices too large to represent at all (overflow is rejected, not
    /// wrapped).
    IndexOutOfRange {
        /// Row index as written in the file.
        row: String,
        /// Column index as written in the file.
        col: String,
        /// Number of vertices declared by the size line.
        vertices: u64,
    },
    /// The number of data lines does not match the declared entry
    /// count. Detected as soon as the declared count is exceeded, so a
    /// lying header cannot make the parser buffer unbounded input.
    WrongEntryCount {
        /// Entries declared by the size line.
        declared: u64,
        /// Entries actually present (a lower bound when over-long
        /// input was abandoned early).
        found: u64,
    },
    /// The stream is dominated by duplicate edges — a malformed or
    /// adversarial file (coordinate format forbids duplicates); the
    /// parser refuses to keep burning time deduplicating it.
    DuplicateFlood {
        /// Duplicate data lines seen before giving up.
        duplicates: u64,
        /// Entries declared by the size line.
        declared: u64,
    },
}

impl fmt::Display for ParseMtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMtxError::Io(e) => write!(f, "i/o error reading matrix market data: {e}"),
            ParseMtxError::Malformed(m) => write!(f, "malformed matrix market data: {m}"),
            ParseMtxError::TruncatedHeader { line } => {
                write!(f, "truncated matrix market header: {line:?}")
            }
            ParseMtxError::IndexOutOfRange { row, col, vertices } => write!(
                f,
                "vertex index out of range: ({row}, {col}) in a {vertices}-vertex matrix"
            ),
            ParseMtxError::WrongEntryCount { declared, found } => {
                write!(f, "expected {declared} entries, found {found}")
            }
            ParseMtxError::DuplicateFlood {
                duplicates,
                declared,
            } => write!(
                f,
                "duplicate-edge flood: {duplicates} duplicate entries in a stream declaring \
                 {declared}"
            ),
        }
    }
}

impl std::error::Error for ParseMtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseMtxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseMtxError {
    fn from(e: io::Error) -> Self {
        ParseMtxError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseMtxError {
    ParseMtxError::Malformed(msg.into())
}

/// Reads a graph from Matrix Market coordinate format, applying the
/// paper's normalization (self-loops removed, symmetrized, 0-based ids).
///
/// Both `general` and `symmetric` headers are accepted; numeric values on
/// data lines (for non-`pattern` files) are ignored. The result is always
/// a directed symmetric graph, matching §V-A of the paper.
///
/// # Errors
///
/// Returns [`ParseMtxError`] if reading fails or the stream is not valid
/// coordinate-format Matrix Market data (non-square size header, indices
/// out of range, wrong entry count, …).
///
/// # Example
///
/// ```
/// use ggs_graph::mtx::read_mtx;
///
/// let data = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n";
/// let g = read_mtx(data.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 4); // symmetrized
/// # Ok::<(), ggs_graph::mtx::ParseMtxError>(())
/// ```
pub fn read_mtx<R: BufRead>(reader: R) -> Result<Csr, ParseMtxError> {
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if line.starts_with("%%MatrixMarket") {
                    break line;
                }
                if !line.trim().is_empty() {
                    return Err(malformed("missing %%MatrixMarket header"));
                }
            }
            None => return Err(malformed("empty input")),
        }
    };
    // The banner is `%%MatrixMarket object format field symmetry`.
    if header.split_whitespace().count() < 5 {
        return Err(ParseMtxError::TruncatedHeader { line: header });
    }
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.contains("coordinate") {
        return Err(malformed("only coordinate format is supported"));
    }

    // Skip comments, find the size line.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(malformed("missing size line")),
        }
    };
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| malformed(format!("bad size line: {e}")))?;
    if dims.len() < 3 {
        return Err(ParseMtxError::TruncatedHeader { line: size_line });
    }
    let [rows, cols, nnz] = dims[..] else {
        return Err(malformed("size line must have exactly three fields"));
    };
    if rows != cols {
        return Err(malformed(format!(
            "matrix must be square, got {rows}x{cols}"
        )));
    }
    if rows > u32::MAX as u64 {
        return Err(malformed("too many vertices for u32 ids"));
    }
    let n = rows as u32;

    let mut builder = GraphBuilder::new(n).symmetric(true);
    let mut seen = 0u64;
    let mut duplicates = 0u64;
    let mut edges = HashSet::new();
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        // Bail as soon as the declared count is exceeded; a lying
        // header must not make us buffer an unbounded stream.
        if seen == nnz {
            return Err(ParseMtxError::WrongEntryCount {
                declared: nnz,
                found: seen + 1,
            });
        }
        let mut it = trimmed.split_whitespace();
        let (Some(r), Some(c)) = (it.next(), it.next()) else {
            return Err(malformed(format!(
                "entry line needs two indices: {trimmed:?}"
            )));
        };
        let bad_index = |row: &str, col: &str| ParseMtxError::IndexOutOfRange {
            row: row.to_string(),
            col: col.to_string(),
            vertices: rows,
        };
        let rv: u64 = parse_index(r, "row", || bad_index(r, c))?;
        let cv: u64 = parse_index(c, "col", || bad_index(r, c))?;
        if rv == 0 || cv == 0 || rv > rows || cv > cols {
            return Err(bad_index(r, c));
        }
        seen += 1;
        let edge = ((rv - 1) as u32, (cv - 1) as u32);
        if edges.insert(edge) {
            builder = builder.edge(edge.0, edge.1);
        } else {
            duplicates += 1;
            if duplicates >= DUPLICATE_FLOOD_FLOOR && duplicates > seen - duplicates {
                return Err(ParseMtxError::DuplicateFlood {
                    duplicates,
                    declared: nnz,
                });
            }
        }
    }
    if seen != nnz {
        return Err(ParseMtxError::WrongEntryCount {
            declared: nnz,
            found: seen,
        });
    }
    Ok(builder.build())
}

/// A stream is a duplicate flood once most of its entries are repeats
/// *and* there are at least this many of them; small files with a few
/// stray duplicates are still deduplicated silently.
const DUPLICATE_FLOOD_FLOOR: u64 = 4096;

/// Parses a 1-based vertex index, mapping overflow (an index too large
/// to represent at all) to the caller's out-of-range error rather than
/// a generic parse failure.
fn parse_index(
    token: &str,
    which: &str,
    out_of_range: impl FnOnce() -> ParseMtxError,
) -> Result<u64, ParseMtxError> {
    token.parse::<u64>().map_err(|e| {
        if *e.kind() == IntErrorKind::PosOverflow {
            out_of_range()
        } else {
            malformed(format!("bad {which} index: {e}"))
        }
    })
}

/// Writes a graph in Matrix Market coordinate `pattern general` format
/// with 1-based indices.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_mtx<W: Write>(graph: &Csr, mut writer: W) -> io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        writer,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(writer, "{} {}", s + 1, t + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_symmetric() {
        let data =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n4 4 3\n1 2\n2 3\n3 4\n";
        let g = read_mtx(data.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn parses_real_values_and_drops_self_loops() {
        let data =
            "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 5.0\n1 2 1.5\n2 1 2.5\n";
        let g = read_mtx(data.as_bytes()).unwrap();
        assert!(!g.has_self_loops());
        assert_eq!(g.num_edges(), 2); // (0,1) and (1,0)
    }

    #[test]
    fn roundtrip_through_write() {
        let g = crate::GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .symmetric(true)
            .build();
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let g2 = read_mtx(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_non_square() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::WrongEntryCount {
                declared: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn bails_on_excess_entries_without_reading_the_rest() {
        // Declares one entry but carries three; the parser must stop at
        // the second rather than buffer the whole stream first.
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n1 3\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::WrongEntryCount {
                declared: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::IndexOutOfRange { vertices: 2, .. })
        ));
    }

    #[test]
    fn rejects_overflowing_index_instead_of_wrapping() {
        // 2^64 does not fit in u64; it must surface as out-of-range,
        // not as a wrapped-around small index or a generic parse error.
        let data =
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 18446744073709551616\n";
        let err = read_mtx(data.as_bytes()).unwrap_err();
        match err {
            ParseMtxError::IndexOutOfRange { col, vertices, .. } => {
                assert_eq!(col, "18446744073709551616");
                assert_eq!(vertices, 2);
            }
            other => panic!("expected IndexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_banner() {
        let data = "%%MatrixMarket matrix coordinate\n3 3 1\n1 2\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::TruncatedHeader { .. })
        ));
    }

    #[test]
    fn rejects_truncated_size_line() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 3\n1 2\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::TruncatedHeader { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_edge_flood() {
        let nnz = 10_000;
        let mut data = format!("%%MatrixMarket matrix coordinate pattern general\n3 3 {nnz}\n");
        for _ in 0..nnz {
            data.push_str("1 2\n");
        }
        match read_mtx(data.as_bytes()).unwrap_err() {
            ParseMtxError::DuplicateFlood {
                duplicates,
                declared,
            } => {
                assert_eq!(declared, nnz);
                assert!(duplicates >= 4096, "tripped too early: {duplicates}");
                assert!(duplicates < nnz, "should bail before consuming the flood");
            }
            other => panic!("expected DuplicateFlood, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_a_few_stray_duplicates() {
        // Coordinate format forbids duplicates, but real-world files
        // carry the odd repeat; those still dedup silently.
        let data = "%%MatrixMarket matrix coordinate pattern general\n4 4 4\n1 2\n1 2\n2 3\n3 4\n";
        let g = read_mtx(data.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 6); // 3 unique edges, symmetrized
    }

    #[test]
    fn rejects_missing_header() {
        let data = "3 3 1\n1 2\n";
        assert!(read_mtx(data.as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_mtx("".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("malformed"));
        let typed = ParseMtxError::IndexOutOfRange {
            row: "1".into(),
            col: "99".into(),
            vertices: 2,
        };
        assert_eq!(
            format!("{typed}"),
            "vertex index out of range: (1, 99) in a 2-vertex matrix"
        );
    }
}
