//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! The paper's inputs come from the SuiteSparse matrix collection, which
//! distributes graphs in this format. Supporting it lets users run the
//! reproduction on the *original* inputs when they have them, instead of
//! the bundled synthetic stand-ins.

use std::fmt;
use std::io::{self, BufRead, Write};

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Error parsing a Matrix Market stream.
#[derive(Debug)]
pub enum ParseMtxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents; the string describes it.
    Malformed(String),
}

impl fmt::Display for ParseMtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMtxError::Io(e) => write!(f, "i/o error reading matrix market data: {e}"),
            ParseMtxError::Malformed(m) => write!(f, "malformed matrix market data: {m}"),
        }
    }
}

impl std::error::Error for ParseMtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseMtxError::Io(e) => Some(e),
            ParseMtxError::Malformed(_) => None,
        }
    }
}

impl From<io::Error> for ParseMtxError {
    fn from(e: io::Error) -> Self {
        ParseMtxError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseMtxError {
    ParseMtxError::Malformed(msg.into())
}

/// Reads a graph from Matrix Market coordinate format, applying the
/// paper's normalization (self-loops removed, symmetrized, 0-based ids).
///
/// Both `general` and `symmetric` headers are accepted; numeric values on
/// data lines (for non-`pattern` files) are ignored. The result is always
/// a directed symmetric graph, matching §V-A of the paper.
///
/// # Errors
///
/// Returns [`ParseMtxError`] if reading fails or the stream is not valid
/// coordinate-format Matrix Market data (non-square size header, indices
/// out of range, wrong entry count, …).
///
/// # Example
///
/// ```
/// use ggs_graph::mtx::read_mtx;
///
/// let data = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n1 2\n2 3\n";
/// let g = read_mtx(data.as_bytes())?;
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 4); // symmetrized
/// # Ok::<(), ggs_graph::mtx::ParseMtxError>(())
/// ```
pub fn read_mtx<R: BufRead>(reader: R) -> Result<Csr, ParseMtxError> {
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if line.starts_with("%%MatrixMarket") {
                    break line;
                }
                if !line.trim().is_empty() {
                    return Err(malformed("missing %%MatrixMarket header"));
                }
            }
            None => return Err(malformed("empty input")),
        }
    };
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.contains("coordinate") {
        return Err(malformed("only coordinate format is supported"));
    }

    // Skip comments, find the size line.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => return Err(malformed("missing size line")),
        }
    };
    let dims: Vec<u64> = size_line
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| malformed(format!("bad size line: {e}")))?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(malformed("size line must have three fields"));
    };
    if rows != cols {
        return Err(malformed(format!(
            "matrix must be square, got {rows}x{cols}"
        )));
    }
    if rows > u32::MAX as u64 {
        return Err(malformed("too many vertices for u32 ids"));
    }
    let n = rows as u32;

    let mut builder = GraphBuilder::new(n).symmetric(true);
    let mut seen = 0u64;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(r), Some(c)) = (it.next(), it.next()) else {
            return Err(malformed(format!(
                "entry line needs two indices: {trimmed:?}"
            )));
        };
        let r: u64 = r
            .parse()
            .map_err(|e| malformed(format!("bad row index: {e}")))?;
        let c: u64 = c
            .parse()
            .map_err(|e| malformed(format!("bad col index: {e}")))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(malformed(format!("index out of range: {r} {c}")));
        }
        builder = builder.edge((r - 1) as u32, (c - 1) as u32);
        seen += 1;
    }
    if seen != nnz {
        return Err(malformed(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(builder.build())
}

/// Writes a graph in Matrix Market coordinate `pattern general` format
/// with 1-based indices.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_mtx<W: Write>(graph: &Csr, mut writer: W) -> io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(
        writer,
        "{} {} {}",
        graph.num_vertices(),
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (s, t) in graph.edges() {
        writeln!(writer, "{} {}", s + 1, t + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pattern_symmetric() {
        let data =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n4 4 3\n1 2\n2 3\n3 4\n";
        let g = read_mtx(data.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn parses_real_values_and_drops_self_loops() {
        let data =
            "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 5.0\n1 2 1.5\n2 1 2.5\n";
        let g = read_mtx(data.as_bytes()).unwrap();
        assert!(!g.has_self_loops());
        assert_eq!(g.num_edges(), 2); // (0,1) and (1,0)
    }

    #[test]
    fn roundtrip_through_write() {
        let g = crate::GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .symmetric(true)
            .build();
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let g2 = read_mtx(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_non_square() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n";
        assert!(matches!(
            read_mtx(data.as_bytes()),
            Err(ParseMtxError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n";
        assert!(read_mtx(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 9\n";
        assert!(read_mtx(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_header() {
        let data = "3 3 1\n1 2\n";
        assert!(read_mtx(data.as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_mtx("".as_bytes()).unwrap_err();
        assert!(format!("{err}").contains("malformed"));
    }
}
