//! The six Table II presets.

use super::degrees::DegreeModel;
use super::SynthConfig;

/// The six graph inputs of the paper's Table II.
///
/// Each variant names a SuiteSparse graph used by the paper; the
/// generator reproduces its structural profile (see module docs).
///
/// | Preset | Vertices | Edges | Avg deg | Reuse | Imbalance | Volume |
/// |--------|----------|-------|---------|-------|-----------|--------|
/// | `Amz`  | 410 236 | 6 713 648 | 16.27 | 0.160 (M) | 0.000 (L) | H |
/// | `Dct`  |  52 652 |   178 076 |  3.38 | 0.359 (M) | 0.083 (M) | M |
/// | `Eml`  | 265 214 |   837 912 |  3.16 | 0.053 (L) | 1.000 (H) | H |
/// | `Ols`  |  88 263 |   683 186 |  7.74 | 0.445 (H) | 0.000 (L) | M |
/// | `Raj`  |  20 640 |   163 178 |  7.91 | 0.594 (H) | 0.617 (H) | L |
/// | `Wng`  |  61 032 |   243 088 |  3.92 | 0.005 (L) | 0.000 (L) | M |
///
/// `Rd` is an extension input beyond Table II (see its variant docs).
///
/// Note: the paper's Table II prints `0.594` in WNG's Reuse column but
/// classifies it **(L)**; the value is a typesetting artifact (WNG's
/// ANL/ANR of 0.020/3.899 give Reuse ≈ 0.005 by Equation 6, which is what
/// the (L) class reflects and what we target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphPreset {
    /// `amazon0601`-like co-purchase network: dense, smooth degrees,
    /// high volume, no warp imbalance.
    Amz,
    /// Road-network-like graph — **extension input** beyond Table II
    /// (per the paper's §VIII outlook of extending the taxonomy to more
    /// datasets): near-constant low degree, very strong locality, zero
    /// imbalance. Not in [`GraphPreset::ALL`]; see
    /// [`GraphPreset::EXTENDED`].
    Rd,
    /// Dictionary-adjacency-like graph: small, sparse, mild imbalance.
    Dct,
    /// Email-network-like graph: power-law hubs in every thread block,
    /// minimal locality.
    Eml,
    /// Structural-mesh-like matrix: narrow degree band, strong locality.
    Ols,
    /// Circuit-simulation-like matrix: strong locality *and* heavy hubs.
    Raj,
    /// 3D-mesh wing graph: constant degree 4, nearly zero locality.
    Wng,
}

impl GraphPreset {
    /// All six presets in Table II order (the paper's input matrix).
    pub const ALL: [GraphPreset; 6] = [
        GraphPreset::Amz,
        GraphPreset::Dct,
        GraphPreset::Eml,
        GraphPreset::Ols,
        GraphPreset::Raj,
        GraphPreset::Wng,
    ];

    /// Extension inputs beyond Table II (§VIII outlook).
    pub const EXTENDED: [GraphPreset; 1] = [GraphPreset::Rd];

    /// Table II mnemonic (e.g. `"AMZ"`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            GraphPreset::Amz => "AMZ",
            GraphPreset::Rd => "RD",
            GraphPreset::Dct => "DCT",
            GraphPreset::Eml => "EML",
            GraphPreset::Ols => "OLS",
            GraphPreset::Raj => "RAJ",
            GraphPreset::Wng => "WNG",
        }
    }

    /// Full-scale vertex count from Table II.
    pub fn table2_vertices(self) -> u32 {
        match self {
            GraphPreset::Amz => 410_236,
            GraphPreset::Rd => 131_072,
            GraphPreset::Dct => 52_652,
            GraphPreset::Eml => 265_214,
            GraphPreset::Ols => 88_263,
            GraphPreset::Raj => 20_640,
            GraphPreset::Wng => 61_032,
        }
    }

    /// Full-scale directed edge count from Table II.
    pub fn table2_edges(self) -> u64 {
        match self {
            GraphPreset::Amz => 6_713_648,
            GraphPreset::Rd => 349_526,
            GraphPreset::Dct => 178_076,
            GraphPreset::Eml => 837_912,
            GraphPreset::Ols => 683_186,
            GraphPreset::Raj => 163_178,
            GraphPreset::Wng => 243_088,
        }
    }
}

impl std::fmt::Display for GraphPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl std::str::FromStr for GraphPreset {
    type Err = ParsePresetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "AMZ" => Ok(GraphPreset::Amz),
            "RD" => Ok(GraphPreset::Rd),
            "DCT" => Ok(GraphPreset::Dct),
            "EML" => Ok(GraphPreset::Eml),
            "OLS" => Ok(GraphPreset::Ols),
            "RAJ" => Ok(GraphPreset::Raj),
            "WNG" => Ok(GraphPreset::Wng),
            _ => Err(ParsePresetError(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unknown preset mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePresetError(String);

impl std::fmt::Display for ParsePresetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown graph preset {:?} (expected one of AMZ, DCT, EML, OLS, RAJ, WNG)",
            self.0
        )
    }
}

impl std::error::Error for ParsePresetError {}

pub(super) fn config_for(preset: GraphPreset) -> SynthConfig {
    let (avg_degree, model, p_local, seed) = match preset {
        // Smooth log-normal degrees (cv ≈ 1 gives std ≈ avg ≈ 16.3) with a
        // couple of planted max-degree vertices; low locality.
        GraphPreset::Amz => (
            16.265,
            DegreeModel::log_normal(0.95).with_hubs(0.002, 2000.0, 2770.0, 1.0),
            0.161,
            0xA312,
        ),
        // Sparse with a mild tail; ~8% of blocks get a small hub.
        GraphPreset::Dct => (
            3.382,
            DegreeModel::log_normal(1.0).with_hubs(0.083, 28.0, 38.0, 1.0),
            0.359,
            0xDC71,
        ),
        // Power-law: every block holds a hub (imbalance 1.0), heavy tail
        // up to 7636, almost no locality.
        GraphPreset::Eml => (
            3.159,
            DegreeModel::log_normal(0.6).with_hubs(1.0, 25.0, 7636.0, 0.55),
            0.053,
            0xE3A1,
        ),
        // Narrow degree band (max 10) with strong locality and no hubs.
        GraphPreset::Ols => (
            7.740,
            DegreeModel::log_normal(0.31).clamped(3, 10),
            0.445,
            0x0175,
        ),
        // Strong locality plus hubs in ~62% of blocks.
        GraphPreset::Raj => (
            7.906,
            DegreeModel::log_normal(0.8).with_hubs(0.617, 40.0, 3469.0, 0.7),
            0.594,
            0x4A31,
        ),
        // Constant degree-4 mesh with remote-shuffled neighbors.
        GraphPreset::Wng => (3.919, DegreeModel::constant(4, 0.081), 0.005, 0x1462),
        // Extension: road-network-like — sparse near-constant degree,
        // almost entirely thread-block-local wiring, no hubs.
        GraphPreset::Rd => (2.667, DegreeModel::constant(3, 0.25), 0.85, 0x20AD),
    };
    SynthConfig::custom(
        preset.mnemonic(),
        preset.table2_vertices(),
        avg_degree,
        model,
        p_local,
    )
    .seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for p in GraphPreset::ALL {
            let parsed: GraphPreset = p.mnemonic().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("amz".parse::<GraphPreset>().unwrap(), GraphPreset::Amz);
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "XYZ".parse::<GraphPreset>().unwrap_err();
        assert!(err.to_string().contains("XYZ"));
    }

    #[test]
    fn presets_carry_table2_sizes() {
        let cfg = SynthConfig::preset(GraphPreset::Raj);
        assert_eq!(cfg.num_vertices(), 20_640);
        // Target directed edges track Table II within rounding.
        let diff = (cfg.target_edges() as i64 - 163_178).abs();
        assert!(diff < 200, "diff = {diff}");
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(GraphPreset::Ols.to_string(), "OLS");
    }

    #[test]
    fn extension_preset_generates_road_like_structure() {
        let g = SynthConfig::preset(GraphPreset::Rd).scale(0.05).generate();
        let stats = g.degree_stats();
        assert!(stats.avg < 3.5, "road networks are sparse: {}", stats.avg);
        assert!(stats.max <= 8, "no hubs: {}", stats.max);
        let local = g.edges().filter(|&(s, t)| s / 256 == t / 256).count() as f64;
        assert!(
            local / g.num_edges() as f64 > 0.6,
            "road networks are strongly local"
        );
    }
}
