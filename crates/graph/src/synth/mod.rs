//! Synthetic stand-ins for the paper's six SuiteSparse inputs.
//!
//! The original inputs (AMZ, DCT, EML, OLS, RAJ, WNG — Table II of the
//! paper) are not redistributable here, so this module generates graphs
//! that reproduce each input's *structural profile*: vertex/edge counts
//! (at a configurable scale), degree distribution shape (max / average /
//! standard deviation), intra-thread-block locality (ANL/ANR, which drive
//! the paper's Reuse metric), and warp-level load imbalance (which drives
//! the paper's Imbalance metric).
//!
//! The taxonomy and the specialization model consume only those metrics,
//! so matching them preserves every decision the paper's model makes; the
//! simulator sees the same qualitative cache-thrash / locality / imbalance
//! behaviour as the originals.
//!
//! # Generation scheme
//!
//! A configuration-model variant with a locality split:
//!
//! 1. Draw a target degree for every vertex from the preset's
//!    [`DegreeModel`], assigned either smoothly along vertex ids (no warp
//!    imbalance) or with explicit *hubs* planted in a chosen fraction of
//!    thread blocks (controlling the Imbalance metric directly).
//! 2. Split each vertex's stubs into *local* (paired within its 256-vertex
//!    thread-block window; controls ANL) and *remote* (paired globally;
//!    controls ANR) shares according to the preset's locality.
//! 3. Pair stubs, reject self-loops/duplicates, then trim or pad random
//!    undirected pairs to hit the exact target edge count.
//!
//! The result is always a directed symmetric graph, matching §V-A.

mod degrees;
mod presets;
mod wiring;

pub use degrees::DegreeModel;
pub use presets::{GraphPreset, ParsePresetError};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::csr::Csr;

/// Tunable description of a synthetic graph.
///
/// Obtain one from [`SynthConfig::preset`] and adjust it with the builder
/// methods, or construct a fully custom configuration with
/// [`SynthConfig::custom`].
///
/// # Example
///
/// ```
/// use ggs_graph::synth::{GraphPreset, SynthConfig};
///
/// let g = SynthConfig::preset(GraphPreset::Wng).scale(0.05).generate();
/// // WNG is a degree-4 mesh: the synthetic twin keeps that shape.
/// assert!(g.degree_stats().avg > 3.0 && g.degree_stats().avg < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct SynthConfig {
    name: String,
    num_vertices: u32,
    avg_degree: f64,
    degree_model: DegreeModel,
    /// Fraction of each vertex's edges wired inside its thread-block
    /// window (drives ANL / Reuse).
    p_local: f64,
    /// Thread-block size used for the locality window; must match the
    /// simulated thread-block size for the Reuse metric to be meaningful.
    block_size: u32,
    seed: u64,
}

impl SynthConfig {
    /// Starts from one of the six Table II presets at full scale.
    pub fn preset(preset: GraphPreset) -> Self {
        presets::config_for(preset)
    }

    /// Creates a fully custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `avg_degree` is negative, `p_local` is outside `[0, 1]`,
    /// or `block_size` is zero.
    pub fn custom(
        name: impl Into<String>,
        num_vertices: u32,
        avg_degree: f64,
        degree_model: DegreeModel,
        p_local: f64,
    ) -> Self {
        assert!(avg_degree >= 0.0, "avg_degree must be non-negative");
        assert!((0.0..=1.0).contains(&p_local), "p_local must be in [0, 1]");
        Self {
            name: name.into(),
            num_vertices,
            avg_degree,
            degree_model,
            p_local,
            block_size: 256,
            seed: 0x5eed,
        }
    }

    /// Scales the graph down (or up): vertex and edge counts are
    /// multiplied by `factor`, keeping the average degree and every
    /// distribution *shape* parameter fixed. Planted hub degrees scale
    /// with the vertex count but never below the threshold that keeps a
    /// thread block classified as imbalanced.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        self.num_vertices = ((self.num_vertices as f64 * factor).round() as u32).max(2);
        self.degree_model = self.degree_model.scaled(factor);
        self
    }

    /// Overrides the RNG seed (default is a fixed per-preset seed, so
    /// generation is deterministic).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the thread-block window used for locality wiring
    /// (default 256, the simulator's thread-block size).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn block_size(mut self, block_size: u32) -> Self {
        assert!(block_size > 0, "block_size must be positive");
        self.block_size = block_size;
        self
    }

    /// Human-readable name of the configuration (preset mnemonic or the
    /// custom name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured vertex count.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Target directed edge count (`avg_degree × num_vertices`, rounded
    /// to an even number since edges come in symmetric pairs).
    pub fn target_edges(&self) -> u64 {
        let e = (self.avg_degree * self.num_vertices as f64).round() as u64;
        e & !1
    }

    /// Generates the graph.
    pub fn generate(&self) -> Csr {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let degrees = self.degree_model.sample(
            self.num_vertices,
            self.avg_degree,
            self.block_size,
            &mut rng,
        );
        wiring::wire(
            self.num_vertices,
            &degrees,
            self.p_local,
            self.block_size,
            self.target_edges(),
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::preset(GraphPreset::Dct).scale(0.1);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = SynthConfig::preset(GraphPreset::Dct).scale(0.1);
        let a = base.clone().seed(1).generate();
        let b = base.seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn output_is_symmetric_without_self_loops() {
        for preset in GraphPreset::ALL {
            let g = SynthConfig::preset(preset).scale(0.02).generate();
            assert!(g.is_symmetric(), "{preset:?} not symmetric");
            assert!(!g.has_self_loops(), "{preset:?} has self-loops");
        }
    }

    #[test]
    fn edge_count_hits_target_exactly() {
        for preset in GraphPreset::ALL {
            let cfg = SynthConfig::preset(preset).scale(0.05);
            let g = cfg.generate();
            assert_eq!(
                g.num_edges(),
                cfg.target_edges(),
                "{preset:?} edge count off target"
            );
        }
    }

    #[test]
    fn average_degree_tracks_preset() {
        let cfg = SynthConfig::preset(GraphPreset::Amz).scale(0.02);
        let g = cfg.generate();
        assert!(
            (g.avg_degree() - 16.265).abs() < 1.0,
            "avg degree {} too far from AMZ target",
            g.avg_degree()
        );
    }

    #[test]
    fn custom_config_respects_parameters() {
        let cfg = SynthConfig::custom("uniform", 4096, 6.0, DegreeModel::constant(6, 0.0), 0.5);
        let g = cfg.generate();
        assert_eq!(g.num_vertices(), 4096);
        assert_eq!(g.num_edges(), cfg.target_edges());
    }

    #[test]
    #[should_panic(expected = "p_local")]
    fn custom_rejects_bad_locality() {
        let _ = SynthConfig::custom("bad", 10, 2.0, DegreeModel::constant(2, 0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_nonpositive() {
        let _ = SynthConfig::preset(GraphPreset::Wng).scale(0.0);
    }
}
