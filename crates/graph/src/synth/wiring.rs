//! Stub pairing: turns a degree sequence plus a locality split into a
//! directed symmetric graph with an exact edge count.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::Csr;

/// Canonical undirected key for an edge.
fn key(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Wires `degrees[v]` stubs per vertex into undirected pairs — a
/// `p_local` share inside each `block_size` window of vertex ids, the
/// rest globally — then trims or pads random pairs until the directed
/// edge count equals `target_edges` exactly, and emits the symmetric
/// [`Csr`].
pub(crate) fn wire(
    num_vertices: u32,
    degrees: &[u32],
    p_local: f64,
    block_size: u32,
    target_edges: u64,
    rng: &mut SmallRng,
) -> Csr {
    assert_eq!(degrees.len(), num_vertices as usize);
    let target_pairs = (target_edges / 2) as usize;
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(target_pairs + target_pairs / 8);
    let mut seen: HashSet<u64> = HashSet::with_capacity(target_pairs * 2);

    let push_pair = |a: u32, b: u32, pairs: &mut Vec<(u32, u32)>, seen: &mut HashSet<u64>| {
        if a != b && seen.insert(key(a, b)) {
            pairs.push((a, b));
        }
    };

    // Local stubs, paired within each thread-block window. A vertex's
    // local share is capped below the window population so its adjacency
    // can actually be realized without duplicates.
    let num_blocks = num_vertices.div_ceil(block_size);
    let mut remote_stubs: Vec<u32> = Vec::new();
    for b in 0..num_blocks {
        let lo = b * block_size;
        let hi = ((b + 1) * block_size).min(num_vertices);
        let window = hi - lo;
        let cap = (window.saturating_sub(1)) * 3 / 4;
        let mut local_stubs: Vec<u32> = Vec::new();
        for v in lo..hi {
            let d = degrees[v as usize];
            let want_local = ((d as f64) * p_local).round() as u32;
            let local = want_local.min(cap);
            for _ in 0..local {
                local_stubs.push(v);
            }
            for _ in 0..(d - local) {
                remote_stubs.push(v);
            }
        }
        local_stubs.shuffle(rng);
        for chunk in local_stubs.chunks_exact(2) {
            push_pair(chunk[0], chunk[1], &mut pairs, &mut seen);
        }
    }

    // Remote stubs, paired globally.
    remote_stubs.shuffle(rng);
    for chunk in remote_stubs.chunks_exact(2) {
        push_pair(chunk[0], chunk[1], &mut pairs, &mut seen);
    }
    drop(remote_stubs);

    // Exact edge-count adjustment. Trimming removes uniformly random
    // pairs; padding adds pairs drawn with the same local/remote mix as
    // the stub wiring, so both adjustments preserve the metric profile in
    // expectation.
    while pairs.len() > target_pairs {
        let i = rng.gen_range(0..pairs.len());
        let (a, b) = pairs.swap_remove(i);
        seen.remove(&key(a, b));
    }
    if num_vertices >= 2 {
        let mut attempts_left = (target_pairs as u64 + 64) * 64;
        while pairs.len() < target_pairs && attempts_left > 0 {
            attempts_left -= 1;
            let a = rng.gen_range(0..num_vertices);
            let b = if rng.gen_bool(p_local.clamp(0.0, 1.0)) {
                let blk = a / block_size;
                let lo = blk * block_size;
                let hi = ((blk + 1) * block_size).min(num_vertices);
                if hi - lo < 2 {
                    rng.gen_range(0..num_vertices)
                } else {
                    rng.gen_range(lo..hi)
                }
            } else {
                rng.gen_range(0..num_vertices)
            };
            push_pair(a, b, &mut pairs, &mut seen);
        }
    }

    let mut directed: Vec<(u32, u32)> = Vec::with_capacity(pairs.len() * 2);
    for (a, b) in pairs {
        directed.push((a, b));
        directed.push((b, a));
    }
    Csr::from_edges(num_vertices, &directed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn exact_edge_count() {
        let degrees = vec![4u32; 1024];
        let g = wire(1024, &degrees, 0.5, 256, 4096, &mut rng());
        assert_eq!(g.num_edges(), 4096);
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
    }

    #[test]
    fn degrees_roughly_match_targets() {
        let degrees = vec![8u32; 2048];
        let g = wire(2048, &degrees, 0.3, 256, 8 * 2048, &mut rng());
        let stats = g.degree_stats();
        assert!((stats.avg - 8.0).abs() < 0.5, "avg = {}", stats.avg);
    }

    #[test]
    fn high_locality_keeps_edges_in_block() {
        let degrees = vec![6u32; 2048];
        let g = wire(2048, &degrees, 1.0, 256, 6 * 2048, &mut rng());
        let local = g.edges().filter(|&(s, t)| s / 256 == t / 256).count() as f64;
        let frac = local / g.num_edges() as f64;
        assert!(frac > 0.9, "local fraction = {frac}");
    }

    #[test]
    fn zero_locality_keeps_edges_mostly_remote() {
        let degrees = vec![6u32; 4096];
        let g = wire(4096, &degrees, 0.0, 256, 6 * 4096, &mut rng());
        let local = g.edges().filter(|&(s, t)| s / 256 == t / 256).count() as f64;
        let frac = local / g.num_edges() as f64;
        assert!(frac < 0.15, "local fraction = {frac}");
    }

    #[test]
    fn trims_when_over_target() {
        let degrees = vec![10u32; 512];
        let g = wire(512, &degrees, 0.5, 256, 1000, &mut rng());
        assert_eq!(g.num_edges(), 1000);
    }

    #[test]
    fn tiny_graph_does_not_hang() {
        let degrees = vec![1u32, 1];
        let g = wire(2, &degrees, 1.0, 256, 2, &mut rng());
        assert_eq!(g.num_edges(), 2);
    }
}
