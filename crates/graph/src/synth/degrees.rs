//! Degree-sequence models for the synthetic generators.

use rand::rngs::SmallRng;
use rand::Rng;

/// How per-vertex target degrees are drawn and laid out over vertex ids.
///
/// The layout is what controls the paper's *Imbalance* metric: degrees
/// assigned smoothly along vertex ids give every warp in a thread block a
/// similar maximum degree (no imbalance), while *hubs* planted into a
/// chosen fraction of thread blocks make exactly that fraction of blocks
/// imbalanced (Equation 7 of the paper).
#[derive(Debug, Clone)]
pub struct DegreeModel {
    base: Base,
    hubs: Option<HubSpec>,
    min_degree: u32,
    max_degree: Option<u32>,
}

#[derive(Debug, Clone)]
enum Base {
    /// Near-constant degree (mesh-like graphs such as WNG).
    Constant {
        value: u32,
        /// Fraction of vertices decremented by one (adds a little
        /// standard deviation without changing the shape).
        jitter: f64,
    },
    /// Log-normal degrees with the given coefficient of variation,
    /// assigned in ascending order along vertex ids (smooth layout).
    LogNormal { cv: f64 },
}

/// Hubs planted into a fraction of thread blocks.
#[derive(Debug, Clone)]
pub(crate) struct HubSpec {
    /// Fraction of thread blocks that receive one hub vertex.
    pub block_fraction: f64,
    /// Hub degrees are drawn from a truncated Pareto on `[lo, hi]`.
    pub degree_lo: f64,
    pub degree_hi: f64,
    /// Pareto shape; larger values concentrate hubs near `lo`.
    pub alpha: f64,
    /// Hubs never drop below this degree when the graph is scaled down,
    /// so the k-means imbalance classifier (centroid gap > 10) keeps
    /// marking their blocks.
    pub floor: u32,
}

impl DegreeModel {
    /// Near-constant degrees: every vertex gets `value`, except a
    /// `jitter` fraction that gets `value - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1]`.
    pub fn constant(value: u32, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        Self {
            base: Base::Constant { value, jitter },
            hubs: None,
            min_degree: value.saturating_sub(1),
            max_degree: None,
        }
    }

    /// Log-normal degrees with coefficient of variation `cv`, assigned
    /// smoothly (ascending) along vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if `cv` is negative.
    pub fn log_normal(cv: f64) -> Self {
        assert!(cv >= 0.0, "cv must be non-negative");
        Self {
            base: Base::LogNormal { cv },
            hubs: None,
            min_degree: 1,
            max_degree: None,
        }
    }

    /// Clamps every sampled degree into `[min, max]`.
    pub fn clamped(mut self, min: u32, max: u32) -> Self {
        self.min_degree = min;
        self.max_degree = Some(max);
        self
    }

    /// Plants one hub per thread block in a `block_fraction` of blocks,
    /// with degrees drawn from a truncated Pareto over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `block_fraction` is outside `[0, 1]` or `lo > hi`.
    pub fn with_hubs(mut self, block_fraction: f64, lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&block_fraction),
            "block_fraction must be in [0, 1]"
        );
        assert!(lo <= hi, "hub degree range must be ordered");
        self.hubs = Some(HubSpec {
            block_fraction,
            degree_lo: lo,
            degree_hi: hi,
            alpha,
            floor: 24,
        });
        self
    }

    /// Returns the model with hub degree ranges (and the max-degree
    /// clamp) multiplied by `factor`, respecting each hub's imbalance
    /// floor.
    pub(crate) fn scaled(mut self, factor: f64) -> Self {
        if let Some(h) = &mut self.hubs {
            h.degree_lo = (h.degree_lo * factor).max(h.floor as f64);
            h.degree_hi = (h.degree_hi * factor).max(h.floor as f64 + 1.0);
        }
        if let Some(m) = &mut self.max_degree {
            let scaled = (*m as f64 * factor).round() as u32;
            // Never clamp below what the base distribution needs.
            *m = scaled.max(self.min_degree + 1).max(*m.min(&mut 16));
        }
        self
    }

    /// Samples the per-vertex degree sequence.
    ///
    /// `avg_degree` is the target mean of the *whole* sequence: the base
    /// distribution's mean is adjusted downward to compensate for the
    /// degree mass the hubs add.
    pub(crate) fn sample(
        &self,
        num_vertices: u32,
        avg_degree: f64,
        block_size: u32,
        rng: &mut SmallRng,
    ) -> Vec<u32> {
        let n = num_vertices as usize;
        if n == 0 {
            return Vec::new();
        }
        let num_blocks = num_vertices.div_ceil(block_size);

        // Decide hub placement and degree mass first so the base mean can
        // compensate.
        let mut hub_positions: Vec<(u32, u32)> = Vec::new(); // (vertex, degree)
        let mut hub_sum = 0.0;
        if let Some(h) = &self.hubs {
            let hub_blocks = ((num_blocks as f64) * h.block_fraction).round() as u32;
            let mut blocks: Vec<u32> = (0..num_blocks).collect();
            // Partial Fisher-Yates to pick hub blocks uniformly.
            for i in 0..hub_blocks.min(num_blocks) {
                let j = rng.gen_range(i..num_blocks);
                blocks.swap(i as usize, j as usize);
            }
            for &b in blocks.iter().take(hub_blocks.min(num_blocks) as usize) {
                let lo = b * block_size;
                let hi = ((b + 1) * block_size).min(num_vertices);
                let v = rng.gen_range(lo..hi);
                let deg = truncated_pareto(h.degree_lo, h.degree_hi, h.alpha, rng)
                    .round()
                    .max(h.floor as f64) as u32;
                let deg = deg.min(num_vertices - 1);
                hub_sum += deg as f64;
                hub_positions.push((v, deg));
            }
        }

        let base_count = n - hub_positions.len();
        let base_mean = if base_count == 0 {
            0.0
        } else {
            ((avg_degree * n as f64) - hub_sum).max(0.0) / base_count as f64
        };

        let mut degrees = match self.base {
            Base::Constant { value, jitter } => {
                // Shift the constant so the overall mean tracks the target
                // even after hubs (usually none for constant models).
                let v = if base_mean > 0.0 {
                    base_mean.round() as u32
                } else {
                    value
                };
                let v = v.max(1);
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(jitter) {
                            v.saturating_sub(1).max(1)
                        } else {
                            v
                        }
                    })
                    .collect::<Vec<u32>>()
            }
            Base::LogNormal { cv } => {
                let mean = base_mean.max(0.5);
                let sigma2 = (1.0 + cv * cv).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                let sigma = sigma2.sqrt();
                let mut d: Vec<u32> = (0..n)
                    .map(|_| {
                        let z = standard_normal(rng);
                        (mu + sigma * z).exp().round().max(1.0) as u32
                    })
                    .collect();
                // Smooth layout: ascending along vertex ids removes warp
                // imbalance from the base distribution.
                d.sort_unstable();
                d
            }
        };

        let cap = self.max_degree.unwrap_or(u32::MAX).min(num_vertices - 1);
        for d in &mut degrees {
            *d = (*d).clamp(self.min_degree.max(1).min(cap), cap);
        }
        for (v, deg) in hub_positions {
            degrees[v as usize] = deg.clamp(1, num_vertices - 1);
        }
        degrees
    }
}

/// Truncated Pareto sample on `[lo, hi]` with shape `alpha` (inverse-CDF
/// method). `alpha == 0` degenerates to log-uniform.
fn truncated_pareto(lo: f64, hi: f64, alpha: f64, rng: &mut SmallRng) -> f64 {
    let lo = lo.max(1.0);
    let hi = hi.max(lo + f64::EPSILON);
    let u: f64 = rng.gen_range(0.0..1.0);
    if alpha.abs() < 1e-9 {
        // log-uniform
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        let la = lo.powf(-alpha);
        let ha = hi.powf(-alpha);
        (la - u * (la - ha)).powf(-1.0 / alpha)
    }
}

/// Standard normal via Box-Muller.
fn standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn constant_model_matches_value() {
        let d = DegreeModel::constant(4, 0.0).sample(1000, 4.0, 256, &mut rng());
        assert!(d.iter().all(|&x| x == 4));
    }

    #[test]
    fn constant_jitter_lowers_some() {
        let d = DegreeModel::constant(4, 0.25).sample(10_000, 4.0, 256, &mut rng());
        let threes = d.iter().filter(|&&x| x == 3).count();
        assert!(threes > 1500 && threes < 3500, "threes = {threes}");
    }

    #[test]
    fn lognormal_mean_tracks_target() {
        let d = DegreeModel::log_normal(1.0).sample(50_000, 16.0, 256, &mut rng());
        let mean = d.iter().map(|&x| x as f64).sum::<f64>() / d.len() as f64;
        assert!((mean - 16.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn lognormal_is_sorted_smooth() {
        let d = DegreeModel::log_normal(0.5).sample(4096, 8.0, 256, &mut rng());
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn hubs_land_in_expected_fraction_of_blocks() {
        let block = 256u32;
        let n = 256 * 100;
        let d = DegreeModel::log_normal(0.3)
            .with_hubs(0.5, 200.0, 400.0, 1.0)
            .sample(n, 8.0, block, &mut rng());
        let hub_blocks = (0..100)
            .filter(|b| {
                d[(b * 256) as usize..((b + 1) * 256) as usize]
                    .iter()
                    .any(|&x| x >= 100)
            })
            .count();
        assert_eq!(hub_blocks, 50);
    }

    #[test]
    fn hubs_respect_floor_when_scaled() {
        let m = DegreeModel::log_normal(0.5)
            .with_hubs(1.0, 1000.0, 2000.0, 1.0)
            .scaled(0.001);
        let d = m.sample(2560, 4.0, 256, &mut rng());
        assert!(d.iter().any(|&x| x >= 24));
    }

    #[test]
    fn clamp_is_enforced() {
        let d = DegreeModel::log_normal(1.0)
            .clamped(3, 10)
            .sample(10_000, 7.0, 256, &mut rng());
        assert!(d.iter().all(|&x| (3..=10).contains(&x)));
    }

    #[test]
    fn truncated_pareto_stays_in_range() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = truncated_pareto(10.0, 100.0, 0.8, &mut r);
            assert!((10.0..=100.0001).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn empty_graph_degrees() {
        let d = DegreeModel::constant(4, 0.0).sample(0, 4.0, 256, &mut rng());
        assert!(d.is_empty());
    }
}
