//! Degree statistics matching the columns of the paper's Table II.

/// Degree statistics of a graph: the `Max Deg`, `Avg Deg`, and `Std Dev`
/// columns of Table II.
///
/// # Example
///
/// ```
/// use ggs_graph::{Csr, DegreeStats};
///
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
/// let s = g.degree_stats();
/// assert_eq!(s.max, 2);
/// assert!((s.avg - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Maximum out-degree.
    pub max: u32,
    /// Minimum out-degree.
    pub min: u32,
    /// Mean out-degree.
    pub avg: f64,
    /// Population standard deviation of the out-degree.
    pub std_dev: f64,
}

impl DegreeStats {
    /// Computes statistics from an iterator of per-vertex degrees.
    ///
    /// Returns the all-zero statistics for an empty iterator.
    pub fn from_degrees<I>(degrees: I) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        let mut n = 0u64;
        let mut sum = 0u64;
        let mut sum_sq = 0u128;
        let mut max = 0u32;
        let mut min = u32::MAX;
        for d in degrees {
            n += 1;
            sum += d as u64;
            sum_sq += (d as u128) * (d as u128);
            max = max.max(d);
            min = min.min(d);
        }
        if n == 0 {
            return Self::default();
        }
        let avg = sum as f64 / n as f64;
        let var = (sum_sq as f64 / n as f64) - avg * avg;
        Self {
            max,
            min,
            avg,
            std_dev: var.max(0.0).sqrt(),
        }
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max={} min={} avg={:.3} std={:.3}",
            self.max, self.min, self.avg, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s, DegreeStats::default());
    }

    #[test]
    fn uniform_degrees_have_zero_stddev() {
        let s = DegreeStats::from_degrees([4, 4, 4, 4]);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 4);
        assert_eq!(s.avg, 4.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_distribution() {
        // degrees 1..=5: mean 3, population variance 2
        let s = DegreeStats::from_degrees(1..=5);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 1);
        assert!((s.avg - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", DegreeStats::default()).is_empty());
    }
}
