//! Edge-list accumulation and normalization into [`Csr`] graphs.

use crate::csr::{Csr, VertexId};

/// Error produced when a [`GraphBuilder`] cannot build a valid graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex `>= num_vertices`.
    EndpointOutOfRange {
        /// The offending edge.
        edge: (VertexId, VertexId),
        /// Number of vertices the builder was created with.
        num_vertices: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphError::EndpointOutOfRange {
                edge: (s, t),
                num_vertices,
            } => write!(
                f,
                "edge endpoint out of range: ({s}, {t}) in a graph of {num_vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder that normalizes an edge list into a [`Csr`] graph.
///
/// The paper's methodology (§V-A) prepares every input the same way:
/// *"each graph has been slightly modified to remove self-edges, and has
/// been converted to a directed, symmetric graph"*. The builder performs
/// exactly those steps: duplicate edges are always removed, self-loops are
/// removed by default, and [`GraphBuilder::symmetric`] adds the reverse of
/// every edge.
///
/// # Example
///
/// ```
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 1) // self-loop: dropped
///     .edge(0, 1) // duplicate: dropped
///     .symmetric(true)
///     .build();
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.is_symmetric());
/// assert!(!g.has_self_loops());
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<(VertexId, VertexId)>,
    symmetric: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            symmetric: false,
            keep_self_loops: false,
        }
    }

    /// Adds a directed edge.
    ///
    /// Endpoints are validated when the graph is built (see
    /// [`GraphBuilder::try_build`]), so adding is infallible.
    pub fn edge(mut self, source: VertexId, target: VertexId) -> Self {
        self.edges.push((source, target));
        self
    }

    /// Adds every edge from an iterator.
    ///
    /// Endpoints are validated when the graph is built (see
    /// [`GraphBuilder::try_build`]), so adding is infallible.
    pub fn edges<I>(mut self, iter: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter);
        self
    }

    /// When `true` (default `false`), the reverse of every edge is added,
    /// producing a directed symmetric graph.
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// When `true` (default `false`), self-loops are preserved instead of
    /// removed.
    pub fn keep_self_loops(mut self, yes: bool) -> Self {
        self.keep_self_loops = yes;
        self
    }

    /// Number of raw (pre-normalization) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Normalizes and builds the [`Csr`] graph.
    ///
    /// # Panics
    ///
    /// Panics if any added edge has an endpoint `>= num_vertices`.
    /// Prefer [`GraphBuilder::try_build`] on paths that must not panic.
    pub fn build(self) -> Csr {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`GraphBuilder::build`]: returns an error if
    /// any added edge has an endpoint `>= num_vertices` instead of
    /// panicking.
    pub fn try_build(self) -> Result<Csr, GraphError> {
        let Self {
            num_vertices,
            mut edges,
            symmetric,
            keep_self_loops,
        } = self;
        if let Some(&edge) = edges
            .iter()
            .find(|&&(s, t)| s >= num_vertices || t >= num_vertices)
        {
            return Err(GraphError::EndpointOutOfRange { edge, num_vertices });
        }
        if !keep_self_loops {
            edges.retain(|&(s, t)| s != t);
        }
        if symmetric {
            let rev: Vec<_> = edges.iter().map(|&(s, t)| (t, s)).collect();
            edges.extend(rev);
        }
        edges.sort_unstable();
        edges.dedup();
        Ok(Csr::from_edges(num_vertices, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_removes_duplicates() {
        let g = GraphBuilder::new(2)
            .edge(0, 1)
            .edge(0, 1)
            .edge(0, 1)
            .build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_removed_by_default() {
        let g = GraphBuilder::new(2).edge(0, 0).edge(0, 1).build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_self_loops());
    }

    #[test]
    fn self_loops_kept_on_request() {
        let g = GraphBuilder::new(2)
            .edge(0, 0)
            .keep_self_loops(true)
            .build();
        assert!(g.has_self_loops());
    }

    #[test]
    fn symmetrize_adds_reverse_edges_without_doubling_existing() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 0) // reverse already present
            .edge(1, 2)
            .symmetric(true)
            .build();
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn edges_from_iterator() {
        let g = GraphBuilder::new(4)
            .edges((0..3).map(|i| (i, i + 1)))
            .build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = GraphBuilder::new(1).edge(0, 1).build();
    }

    #[test]
    fn try_build_reports_out_of_range_edges() {
        let err = GraphBuilder::new(1).edge(0, 7).try_build().unwrap_err();
        assert_eq!(
            err,
            GraphError::EndpointOutOfRange {
                edge: (0, 7),
                num_vertices: 1
            }
        );
        assert!(err.to_string().contains("out of range"));
        assert!(GraphBuilder::new(2).edge(0, 1).try_build().is_ok());
    }
}
