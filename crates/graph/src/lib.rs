//! Graph substrate for the GGS reproduction of *Specializing Coherence,
//! Consistency, and Push/Pull for GPU Graph Analytics* (ISPASS 2020).
//!
//! This crate provides the compressed-sparse-row ([`Csr`]) graph
//! representation consumed by the simulator and applications, a
//! [`builder::GraphBuilder`] for assembling graphs from edge lists, basic
//! degree statistics, Matrix Market I/O (the format the paper's SuiteSparse
//! inputs ship in), and — because the original SuiteSparse inputs are not
//! redistributable here — six synthetic generators ([`synth`]) that
//! reproduce the structural profile of each input in the paper's Table II
//! (AMZ, DCT, EML, OLS, RAJ, WNG).
//!
//! # Example
//!
//! ```
//! use ggs_graph::{GraphBuilder, synth::{GraphPreset, SynthConfig}};
//!
//! // Build a tiny graph by hand…
//! let g = GraphBuilder::new(4)
//!     .edge(0, 1)
//!     .edge(1, 2)
//!     .edge(2, 3)
//!     .symmetric(true)
//!     .build();
//! assert_eq!(g.num_edges(), 6); // symmetrized
//!
//! // …or generate a scaled-down synthetic stand-in for one of the paper's
//! // inputs.
//! let amz = SynthConfig::preset(GraphPreset::Amz).scale(0.01).generate();
//! assert!(amz.num_vertices() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod csr;
pub mod mtx;
pub mod stats;
pub mod synth;

pub use builder::{GraphBuilder, GraphError};
pub use csr::{Csr, VertexId};
pub use stats::DegreeStats;
