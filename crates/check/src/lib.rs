//! `ggs-check` — the checking layer of the GGS reproduction.
//!
//! The paper's central premise is a *contract*: each propagation
//! direction promises a synchronization discipline (Table I), and each
//! coherence/consistency point exploits that promise. Pull kernels
//! perform dense local updates and sparse remote *reads* — no atomics,
//! no remote writes. Push kernels perform dense local reads and update
//! remote state *only through atomics*. CC's push+pull direction admits
//! racy (benign, monotonic) reads and marked updates. The simulator
//! silently assumes all of this; nothing in the timing model would
//! complain if an application trace broke its direction's discipline or
//! if a protocol implementation leaked a stale line. This crate makes
//! both assumptions checkable:
//!
//! * [`drf`] — a **static analyzer** over [`ggs_sim::trace::KernelTrace`]:
//!   builds the per-address access map across threads of each kernel
//!   (kernel boundaries are global barriers, so kernels are analyzed
//!   independently), classifies every address
//!   ([`drf::AccessClass`]), reports data races, and checks the Table I
//!   per-direction contracts.
//! * [`certify`] — runs the analyzer over whole applications
//!   ([`certify::certify_workload`]) and the full application × direction
//!   matrix ([`certify::certify_matrix`]), attributing violations to
//!   named arrays via each workload's memory map.
//! * the **dynamic protocol checker** lives in [`ggs_sim::check`]
//!   (enabled here via the sim's `check` feature);
//!   [`certify::run_protocol_checked`] drives a workload through the
//!   simulator with that observer on and returns any invariant
//!   violations.
//! * the **static model checker** lives in [`ggs_verify`], re-exported
//!   here as [`verify`]: each coherence protocol as a pure transition
//!   system, exhaustive per-cell reachability over the protocol
//!   invariants, an all-interleavings litmus suite per consistency
//!   model, minimized counterexample witnesses, and a conformance
//!   bridge replaying them through the real `mem.rs`.  Where the
//!   dynamic checker watches whichever schedule a simulation happens to
//!   take, the model checker quantifies over *all* schedules of a small
//!   bounded configuration.  Race reports in [`drf`] and witness
//!   schedules share one conflict renderer
//!   ([`verify::AccessSite`]), so both read the same way.
//!
//! The `repro check` and `repro verify` subcommands of the bench crate
//! wire all three passes into CI; see `docs/checking.md` for the
//! contracts in prose and its "Model checking" section for the static
//! layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify;
pub mod drf;

/// The static model-checking layer (`ggs-verify`), re-exported so that
/// checker users can reach every checking mode through one crate.
pub use ggs_verify as verify;

pub use certify::{certify_matrix, certify_workload, run_protocol_checked, AppReport};
pub use drf::{analyze_kernel, AccessClass, KernelAnalysis, Race, Violation, ViolationKind};
