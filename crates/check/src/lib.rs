//! `ggs-check` — the checking layer of the GGS reproduction.
//!
//! The paper's central premise is a *contract*: each propagation
//! direction promises a synchronization discipline (Table I), and each
//! coherence/consistency point exploits that promise. Pull kernels
//! perform dense local updates and sparse remote *reads* — no atomics,
//! no remote writes. Push kernels perform dense local reads and update
//! remote state *only through atomics*. CC's push+pull direction admits
//! racy (benign, monotonic) reads and marked updates. The simulator
//! silently assumes all of this; nothing in the timing model would
//! complain if an application trace broke its direction's discipline or
//! if a protocol implementation leaked a stale line. This crate makes
//! both assumptions checkable:
//!
//! * [`drf`] — a **static analyzer** over [`ggs_sim::trace::KernelTrace`]:
//!   builds the per-address access map across threads of each kernel
//!   (kernel boundaries are global barriers, so kernels are analyzed
//!   independently), classifies every address
//!   ([`drf::AccessClass`]), reports data races, and checks the Table I
//!   per-direction contracts.
//! * [`certify`] — runs the analyzer over whole applications
//!   ([`certify::certify_workload`]) and the full application × direction
//!   matrix ([`certify::certify_matrix`]), attributing violations to
//!   named arrays via each workload's memory map.
//! * the **dynamic protocol checker** lives in [`ggs_sim::check`]
//!   (enabled here via the sim's `check` feature);
//!   [`certify::run_protocol_checked`] drives a workload through the
//!   simulator with that observer on and returns any invariant
//!   violations.
//!
//! The `repro check` subcommand of the bench crate wires both passes
//! into CI; see `docs/checking.md` for the contracts in prose.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certify;
pub mod drf;

pub use certify::{certify_matrix, certify_workload, run_protocol_checked, AppReport};
pub use drf::{analyze_kernel, AccessClass, KernelAnalysis, Race, Violation, ViolationKind};
