//! Whole-application certification: the static analyzer of [`crate::drf`]
//! applied to every kernel of a workload, plus the per-direction Table I
//! contract checks and the dynamic protocol-checked simulation run.
//!
//! Directions promise (Table I of the paper):
//!
//! * **Pull** — dense local updates, sparse remote *reads*, no atomics:
//!   every written address is touched by exactly one thread and no
//!   kernel issues an atomic.
//! * **Push** — dense local reads, sparse remote *atomics*: shared
//!   addresses are only ever updated through atomics (plain writes stay
//!   thread-private).
//! * **Push+Pull** (CC) — racy-but-benign reads with marked updates:
//!   only the DRF rule itself is enforced (no plain-plain races).

use std::borrow::Cow;
use std::fmt;

use ggs_apps::{AppKind, Workload};
use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::check::ProtocolViolation;
use ggs_sim::config::{ConsistencyModel, HwConfig};
use ggs_sim::params::SystemParams;
use ggs_sim::Simulation;

use crate::drf::{analyze_kernel, AccessClass, KernelAnalysis, Violation, ViolationKind};

/// Thread-block size used for certification traces (the same default
/// the simulation study uses).
pub const TB_SIZE: u32 = 256;

/// The certification result for one application in one direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppReport {
    /// Application.
    pub app: AppKind,
    /// Propagation direction analyzed.
    pub prop: Propagation,
    /// Consistency model the synchronization counts were computed
    /// under.
    pub consistency: ConsistencyModel,
    /// Kernels in the launch sequence.
    pub kernels: usize,
    /// Distinct addresses analyzed, summed over kernels.
    pub addresses: usize,
    /// Address counts per [`AccessClass`] (summed over kernels),
    /// indexed by [`AccessClass::index`].
    pub class_counts: [usize; 5],
    /// Total atomic ops across kernels.
    pub atomic_ops: u64,
    /// Atomics acting as fences under `consistency` (see
    /// [`crate::drf::KernelAnalysis::fence_atomics`]).
    pub fence_atomics: u64,
    /// Atomics blocking their warp under `consistency`.
    pub blocking_atomics: u64,
    /// Total plain stores across kernels.
    pub plain_writes: u64,
    /// Every race and contract violation found.
    pub violations: Vec<Violation>,
}

impl AppReport {
    /// `true` if the workload honors both the DRF rule and its
    /// direction's contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line summary for tables and logs.
    pub fn summary_line(&self) -> String {
        let classes: Vec<String> = AccessClass::ALL
            .iter()
            .filter(|c| self.class_counts[c.index()] > 0)
            .map(|c| format!("{} {}", c.label(), self.class_counts[c.index()]))
            .collect();
        format!(
            "{:4} {:9} {:6}: {:3} kernels, {:6} addrs [{}], {} atomics ({} fence, {} blocking) — {}",
            self.app.mnemonic(),
            self.prop.to_string(),
            self.consistency.to_string(),
            self.kernels,
            self.addresses,
            classes.join(", "),
            self.atomic_ops,
            self.fence_atomics,
            self.blocking_atomics,
            if self.is_clean() {
                "CLEAN".to_owned()
            } else {
                format!("{} VIOLATIONS", self.violations.len())
            }
        )
    }
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_line())
    }
}

/// Applies the per-direction contract to one kernel's analysis,
/// attributing addresses to `regions` (`(name, base, bytes)` entries
/// from the workload's memory map).
///
/// # Panics
///
/// Panics if `prop` is [`Propagation::Hybrid`]: a hybrid run has no
/// single whole-run contract. Each kernel must be checked under the
/// direction it actually ran — zip the kernel stream with
/// [`Workload::direction_schedule`] and pass the realized direction,
/// as [`certify_workload`] does.
pub fn check_kernel_contract(
    analysis: &KernelAnalysis,
    prop: Propagation,
    kernel: usize,
    regions: &[(String, u64, u64)],
) -> Vec<Violation> {
    let region_of = |addr: u64| -> Option<String> {
        regions
            .iter()
            .find(|(_, base, bytes)| addr >= *base && addr < base + bytes)
            .map(|(name, _, _)| name.clone())
    };
    let mut out = Vec::new();
    for race in &analysis.races {
        out.push(Violation {
            kernel,
            addr: race.addr,
            region: region_of(race.addr),
            kind: ViolationKind::Race,
            detail: format!(
                "{} ({} plain writes, {} plain reads; threads {:?})",
                race.conflict_line(),
                race.plain_writes,
                race.plain_reads,
                race.threads
            ),
        });
    }
    match prop {
        Propagation::Push => {
            for (addr, threads) in &analysis.shared_plain_writes {
                out.push(Violation {
                    kernel,
                    addr: *addr,
                    region: region_of(*addr),
                    kind: ViolationKind::PushPlainSharedWrite,
                    detail: format!("plain write among threads {threads:?}"),
                });
            }
        }
        Propagation::Pull => {
            for (addr, threads) in &analysis.shared_plain_writes {
                out.push(Violation {
                    kernel,
                    addr: *addr,
                    region: region_of(*addr),
                    kind: ViolationKind::PullRemoteWrite,
                    detail: format!("written address shared by threads {threads:?}"),
                });
            }
            if analysis.atomic_ops > 0 {
                let addr = analysis.atomic_addr_sample.unwrap_or(0);
                out.push(Violation {
                    kernel,
                    addr,
                    region: region_of(addr),
                    kind: ViolationKind::PullAtomic,
                    detail: format!("{} atomics in a pull kernel", analysis.atomic_ops),
                });
            }
        }
        // CC's dynamic direction admits benign monotonic reads and
        // marked updates: only the DRF rule applies.
        Propagation::PushPull => {}
        Propagation::Hybrid => panic!(
            "hybrid kernels must be checked under their realized direction \
             (zip the stream with Workload::direction_schedule)"
        ),
    }
    out
}

/// Adds edge weights when `app` needs them and `graph` has none (same
/// policy as the simulation harness).
fn with_weights(app: AppKind, graph: &Csr) -> Cow<'_, Csr> {
    if app.needs_weights() && !graph.is_weighted() {
        Cow::Owned(graph.clone().with_hashed_weights(64))
    } else {
        Cow::Borrowed(graph)
    }
}

/// Statically certifies one application in one direction on `graph`:
/// analyzes every kernel trace and checks the direction's contract.
///
/// For [`Propagation::Hybrid`] there is no single whole-run contract:
/// the realized per-kernel direction schedule (a pure function of the
/// graph, [`Workload::direction_schedule`]) is zipped with the kernel
/// stream, and every kernel is checked under the Table I contract of
/// the direction it actually ran — push kernels must confine plain
/// writes, pull kernels must be atomic-free with thread-private
/// writes.
pub fn certify_workload(
    app: AppKind,
    graph: &Csr,
    prop: Propagation,
    consistency: ConsistencyModel,
) -> AppReport {
    let graph = with_weights(app, graph);
    let workload = Workload::new(app, &graph);
    let regions = workload.memory_map();
    let schedule = workload.direction_schedule(prop);
    let mut report = AppReport {
        app,
        prop,
        consistency,
        kernels: 0,
        addresses: 0,
        class_counts: [0; 5],
        atomic_ops: 0,
        fence_atomics: 0,
        blocking_atomics: 0,
        plain_writes: 0,
        violations: Vec::new(),
    };
    workload.generate(prop, TB_SIZE, &mut |kernel| {
        let analysis = analyze_kernel(kernel, consistency);
        // Hybrid kernels are judged by the direction they actually ran.
        let realized = schedule.as_ref().map_or(prop, |s| s[report.kernels]);
        report.violations.extend(check_kernel_contract(
            &analysis,
            realized,
            report.kernels,
            &regions,
        ));
        report.addresses += analysis.addresses;
        for (total, n) in report.class_counts.iter_mut().zip(analysis.class_counts) {
            *total += n;
        }
        report.atomic_ops += analysis.atomic_ops;
        report.fence_atomics += analysis.fence_atomics;
        report.blocking_atomics += analysis.blocking_atomics;
        report.plain_writes += analysis.plain_writes;
        report.kernels += 1;
    });
    report
}

/// Certifies the full application × direction matrix on `graph`:
/// the paper's six applications plus (optionally) the extension apps,
/// each in every supported direction.
pub fn certify_matrix(
    graph: &Csr,
    consistency: ConsistencyModel,
    include_extended: bool,
) -> Vec<AppReport> {
    let apps: Vec<AppKind> = AppKind::ALL
        .into_iter()
        .chain(
            include_extended
                .then_some(AppKind::EXTENDED)
                .into_iter()
                .flatten(),
        )
        .collect();
    let mut reports = Vec::new();
    for app in apps {
        for &prop in app.supported_propagations() {
            reports.push(certify_workload(app, graph, prop, consistency));
        }
    }
    reports
}

/// Runs one workload through the simulator with the dynamic protocol
/// checker enabled, auditing the final cache/ownership state, and
/// returns every invariant violation observed (empty = protocol held).
pub fn run_protocol_checked(
    app: AppKind,
    graph: &Csr,
    prop: Propagation,
    hw: HwConfig,
    params: &SystemParams,
) -> Vec<ProtocolViolation> {
    let graph = with_weights(app, graph);
    let workload = Workload::new(app, &graph);
    let mut builder = Simulation::builder(params.clone(), hw).checker();
    for (name, base, bytes) in workload.memory_map() {
        builder = builder.region(name, base, bytes);
    }
    let mut sim = builder.build();
    workload.generate(prop, TB_SIZE, &mut |kernel| sim.run_kernel(kernel));
    sim.audit_protocol();
    sim.take_protocol_violations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;
    use ggs_sim::trace::MicroOp;
    use ggs_sim::KernelTrace;

    fn ring(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn every_workload_is_clean_on_a_ring() {
        let g = ring(64);
        for report in certify_matrix(&g, ConsistencyModel::Drf1, true) {
            assert!(
                report.is_clean(),
                "{}\n{:#?}",
                report.summary_line(),
                report.violations
            );
            assert!(report.kernels > 0, "{}", report.summary_line());
        }
    }

    #[test]
    fn pull_reports_no_atomics_and_push_reports_some() {
        let g = ring(64);
        for app in AppKind::ALL {
            for &prop in app.supported_propagations() {
                let r = certify_workload(app, &g, prop, ConsistencyModel::Drf0);
                if prop == Propagation::Pull {
                    assert_eq!(r.atomic_ops, 0, "{}", r.summary_line());
                }
            }
        }
        let push_pr = certify_workload(AppKind::Pr, &g, Propagation::Push, ConsistencyModel::Drf0);
        assert!(push_pr.atomic_ops > 0);
        // Under DRF0 every atomic fences; the counts must agree.
        assert_eq!(push_pr.fence_atomics, push_pr.atomic_ops);
    }

    #[test]
    fn contract_rejects_plain_shared_write_in_push() {
        let kernel = KernelTrace::new(
            vec![vec![MicroOp::store(64)], vec![MicroOp::atomic(64)]],
            256,
        );
        let analysis = analyze_kernel(&kernel, ConsistencyModel::Drf1);
        let v = check_kernel_contract(&analysis, Propagation::Push, 0, &[]);
        assert!(
            v.iter()
                .any(|x| x.kind == ViolationKind::PushPlainSharedWrite),
            "{v:?}"
        );
    }

    #[test]
    fn contract_rejects_atomics_and_remote_writes_in_pull() {
        let kernel = KernelTrace::new(
            vec![
                vec![MicroOp::atomic(0), MicroOp::store(64)],
                vec![MicroOp::atomic(0), MicroOp::load(64)],
            ],
            256,
        );
        let analysis = analyze_kernel(&kernel, ConsistencyModel::Drf1);
        let v = check_kernel_contract(&analysis, Propagation::Pull, 3, &[("lv".into(), 0, 128)]);
        assert!(
            v.iter().any(|x| x.kind == ViolationKind::PullAtomic),
            "{v:?}"
        );
        // store(64) vs load(64) from different threads is also a race.
        assert!(v.iter().any(|x| x.kind == ViolationKind::Race), "{v:?}");
        assert!(v.iter().all(|x| x.kernel == 3));
        assert!(v.iter().all(|x| x.region.as_deref() == Some("lv")), "{v:?}");
    }

    #[test]
    fn pushpull_applies_only_the_drf_rule() {
        let kernel = KernelTrace::new(
            vec![
                vec![MicroOp::store(0), MicroOp::atomic(64)],
                vec![MicroOp::atomic(64), MicroOp::load(0)],
            ],
            256,
        );
        let analysis = analyze_kernel(&kernel, ConsistencyModel::DrfRlx);
        let v = check_kernel_contract(&analysis, Propagation::PushPull, 0, &[]);
        // store(0)/load(0) race is reported; the atomics are fine.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Race);
    }

    /// Three-tier fanout: root -> 4 hubs -> dense middle tier -> sparse
    /// tail. BFS frontiers are sparse at levels 0-1 (push) and dense at
    /// level 2 (pull), so a hybrid run realizes both directions.
    fn fanout(n: u32) -> Csr {
        let hubs = 4u32;
        let mid_end = n - 32;
        let mut edges: Vec<(u32, u32)> = (1..=hubs).map(|h| (0, h)).collect();
        for h in 1..=hubs {
            for v in hubs + 1..mid_end {
                edges.push((h, v));
            }
        }
        for v in mid_end..n {
            edges.push((hubs + 1 + (v % (mid_end - hubs - 1)), v));
        }
        GraphBuilder::new(n).edges(edges).symmetric(true).build()
    }

    #[test]
    fn hybrid_certifies_each_kernel_under_its_realized_direction() {
        let g = fanout(256);
        let schedule = Workload::new(AppKind::Bfs, &g)
            .direction_schedule(Propagation::Hybrid)
            .expect("BFS supports hybrid");
        // The run must actually mix directions, otherwise this test
        // degenerates to a static certification.
        assert!(schedule.contains(&Propagation::Push), "{schedule:?}");
        assert!(schedule.contains(&Propagation::Pull), "{schedule:?}");

        let r = certify_workload(
            AppKind::Bfs,
            &g,
            Propagation::Hybrid,
            ConsistencyModel::Drf1,
        );
        assert!(r.is_clean(), "{}\n{:#?}", r.summary_line(), r.violations);
        assert_eq!(r.kernels, schedule.len(), "{}", r.summary_line());
        // The push half uses atomics; under a whole-run pull contract
        // those kernels would be flagged, so a clean report is evidence
        // the checker followed the realized schedule.
        assert!(r.atomic_ops > 0, "{}", r.summary_line());
    }

    #[test]
    #[should_panic(expected = "realized direction")]
    fn contract_check_rejects_raw_hybrid() {
        let kernel = KernelTrace::new(vec![vec![MicroOp::load(0)]], 256);
        let analysis = analyze_kernel(&kernel, ConsistencyModel::Drf1);
        let _ = check_kernel_contract(&analysis, Propagation::Hybrid, 0, &[]);
    }

    #[test]
    fn protocol_run_is_clean_for_a_real_workload() {
        let g = ring(64);
        let params = SystemParams::default();
        for hw in HwConfig::all() {
            let violations =
                run_protocol_checked(AppKind::Cc, &g, Propagation::PushPull, hw, &params);
            assert_eq!(violations, Vec::new(), "under {hw}");
        }
    }
}
