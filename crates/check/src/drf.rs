//! Static data-race and sharing analysis of one kernel trace.
//!
//! A [`ggs_sim::trace::KernelTrace`] gives every thread's exact access
//! sequence, so race detection needs no happens-before machinery within
//! a kernel: the simulated GPU provides *no* intra-kernel ordering
//! between plain accesses of different threads (warps and blocks
//! interleave arbitrarily), and kernel boundaries are global barriers
//! (launch acquire + store drain). Two accesses conflict iff they are
//! in the *same* kernel, touch the same word, come from different
//! threads, and at least one is a plain (unmarked) write:
//!
//! > **race(a)** ⇔ plain accesses to `a` come from ≥ 2 distinct
//! > threads **and** at least one of them is a write.
//!
//! Atomics never race with each other, and a plain *read* concurrent
//! with remote atomic writes is deliberately admitted: that is the
//! paper's benign monotonic-publication idiom (push frontier checks, CC
//! parent chasing), where the reader only ever observes a stale-but-
//! monotonic value and re-converges. Such addresses are still called
//! out by their [`AccessClass`], so the report shows exactly where the
//! discipline relies on monotonicity.
//!
//! The analysis is parametrized by [`ConsistencyModel`] — not because
//! the race rule changes (DRF0/DRF1/DRFrlx all require data-race
//! freedom; they differ in what they promise *racy* programs), but
//! because which atomics act as fences or block their warp does, and
//! the report records those counts using the same
//! [`ConsistencyModel::atomic_is_fence`] /
//! [`ConsistencyModel::atomic_blocks_warp`] predicates the timing model
//! uses, keeping the two views of "synchronizing op" identical.

use std::collections::HashMap;
use std::fmt;

use ggs_sim::config::ConsistencyModel;
use ggs_sim::trace::{KernelTrace, MicroOp};
use ggs_verify::AccessSite;

/// Sharing classification of one address within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessClass {
    /// Touched by exactly one thread (any mix of ops): private state.
    ThreadPrivate,
    /// Touched by several threads, reads only: shared immutable data
    /// (graph structure, frontier inputs).
    ReadShared,
    /// Touched by several threads; every write is atomic. Plain reads
    /// may coexist — the benign monotonic-publication idiom.
    WriteSharedAtomic,
    /// One thread writes it plainly while other threads access it only
    /// through atomics. Race-free by the rule above, but fragile: a
    /// second plain accessor would race.
    WriteSharedMixed,
    /// Plain accesses from ≥ 2 threads with at least one plain write: a
    /// data race.
    Racy,
}

impl AccessClass {
    /// All classes, in report order.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::ThreadPrivate,
        AccessClass::ReadShared,
        AccessClass::WriteSharedAtomic,
        AccessClass::WriteSharedMixed,
        AccessClass::Racy,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::ThreadPrivate => "private",
            AccessClass::ReadShared => "read-shared",
            AccessClass::WriteSharedAtomic => "atomic-shared",
            AccessClass::WriteSharedMixed => "mixed-shared",
            AccessClass::Racy => "RACY",
        }
    }

    /// Index into `[usize; 5]` count arrays.
    pub fn index(self) -> usize {
        match self {
            AccessClass::ThreadPrivate => 0,
            AccessClass::ReadShared => 1,
            AccessClass::WriteSharedAtomic => 2,
            AccessClass::WriteSharedMixed => 3,
            AccessClass::Racy => 4,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Up to two distinct thread ids — enough to decide "one thread or
/// several" without storing whole thread sets per address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ThreadPair {
    first: Option<u64>,
    second: Option<u64>,
}

impl ThreadPair {
    fn add(&mut self, t: u64) {
        match (self.first, self.second) {
            (None, _) => self.first = Some(t),
            (Some(a), None) if a != t => self.second = Some(t),
            _ => {}
        }
    }

    fn ids(&self) -> impl Iterator<Item = u64> {
        [self.first, self.second].into_iter().flatten()
    }
}

/// Counts two or more distinct ids across several [`ThreadPair`]s
/// (saturating at 2 — classification only needs "1" vs "≥ 2").
fn distinct2(pairs: &[ThreadPair]) -> usize {
    let mut seen: [Option<u64>; 2] = [None, None];
    for t in pairs.iter().flat_map(|p| p.ids()) {
        match seen {
            [None, _] => seen[0] = Some(t),
            [Some(a), None] if a != t => return 2,
            _ => {}
        }
    }
    usize::from(seen[0].is_some())
}

/// Per-address access summary accumulated over one kernel.
#[derive(Debug, Clone, Copy, Default)]
struct AddrStat {
    plain_reads: u64,
    plain_writes: u64,
    atomics: u64,
    readers: ThreadPair,
    writers: ThreadPair,
    atomic_threads: ThreadPair,
}

impl AddrStat {
    fn plain_accessors(&self) -> usize {
        distinct2(&[self.readers, self.writers])
    }

    fn accessors(&self) -> usize {
        distinct2(&[self.readers, self.writers, self.atomic_threads])
    }

    fn is_race(&self) -> bool {
        self.plain_writes > 0 && self.plain_accessors() >= 2
    }

    fn classify(&self) -> AccessClass {
        if self.is_race() {
            AccessClass::Racy
        } else if self.accessors() <= 1 {
            AccessClass::ThreadPrivate
        } else if self.plain_writes == 0 && self.atomics == 0 {
            AccessClass::ReadShared
        } else if self.plain_writes == 0 {
            AccessClass::WriteSharedAtomic
        } else {
            AccessClass::WriteSharedMixed
        }
    }

    /// Sample of implicated thread ids for diagnostics (up to four).
    fn sample_threads(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.writers.ids().chain(self.readers.ids()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One detected data race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Byte address of the raced word.
    pub addr: u64,
    /// Sample of the racing threads (at least two; first plain writers,
    /// then plain readers).
    pub threads: Vec<u64>,
    /// Plain writes to the address in this kernel.
    pub plain_writes: u64,
    /// Plain reads to the address in this kernel.
    pub plain_reads: u64,
    /// The first concrete conflicting access pair: the earliest plain
    /// write to the address (threads scanned in id order) and the
    /// earliest plain access to it from a different thread.  Rendered
    /// with the same [`AccessSite`] vocabulary ggs-verify uses for
    /// witness schedules.
    pub pair: Option<(AccessSite, AccessSite)>,
}

impl Race {
    /// `thread 0 store @0x40 conflicts with thread 1 load @0x40`, or a
    /// thread-list fallback if the pair could not be reconstructed.
    pub fn conflict_line(&self) -> String {
        match &self.pair {
            Some((a, b)) => format!("{a} conflicts with {b}"),
            None => format!("threads {:?} race", self.threads),
        }
    }
}

/// Finds the first concrete conflicting access pair at `addr`: the
/// earliest plain write (threads in id order, ops in program order) and
/// the earliest plain access from a *different* thread.  By the race
/// rule one of the pair is always a write, so any other-thread plain
/// access conflicts.
fn first_conflicting_pair(kernel: &KernelTrace, addr: u64) -> Option<(AccessSite, AccessSite)> {
    let mut writer: Option<u64> = None;
    'outer: for t in 0..kernel.num_threads() {
        for op in kernel.thread(t) {
            if matches!(*op, MicroOp::Store { addr: a } if a == addr) {
                writer = Some(t);
                break 'outer;
            }
        }
    }
    let wt = writer?;
    for t in 0..kernel.num_threads() {
        if t == wt {
            continue;
        }
        for op in kernel.thread(t) {
            let other = match *op {
                MicroOp::Load { addr: a } if a == addr => AccessSite::thread(t, "load", addr),
                MicroOp::Store { addr: a } if a == addr => AccessSite::thread(t, "store", addr),
                _ => continue,
            };
            return Some((AccessSite::thread(wt, "store", addr), other));
        }
    }
    None
}

/// Which per-direction contract (or the DRF rule itself) was broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Plain conflicting accesses from distinct threads (any
    /// direction): a data race.
    Race,
    /// Push contract: a shared address is updated by a *plain* write —
    /// push may only update remote state through atomics.
    PushPlainSharedWrite,
    /// Pull contract: an address written in a pull kernel is touched by
    /// more than one thread — pull updates must be dense and local.
    PullRemoteWrite,
    /// Pull contract: a pull kernel issued an atomic — pull promises an
    /// entirely synchronization-free epoch.
    PullAtomic,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::Race => "data race",
            ViolationKind::PushPlainSharedWrite => "push: plain write to shared address",
            ViolationKind::PullRemoteWrite => "pull: write to non-private address",
            ViolationKind::PullAtomic => "pull: atomic issued",
        })
    }
}

/// One contract violation, attributed to a kernel and (when a memory
/// map is available) a named array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Zero-based kernel index within the workload's launch sequence.
    pub kernel: usize,
    /// Byte address.
    pub addr: u64,
    /// Name of the array containing `addr`, if the workload's memory
    /// map covers it.
    pub region: Option<String>,
    /// What was violated.
    pub kind: ViolationKind,
    /// Human-readable specifics (thread ids, access counts).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} addr {:#x} ({}): {} — {}",
            self.kernel,
            self.addr,
            self.region.as_deref().unwrap_or("?"),
            self.kind,
            self.detail
        )
    }
}

/// The analysis of one kernel trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAnalysis {
    /// Distinct word addresses touched.
    pub addresses: usize,
    /// Address count per [`AccessClass`], indexed by
    /// [`AccessClass::index`].
    pub class_counts: [usize; 5],
    /// Detected data races (addresses classified [`AccessClass::Racy`]).
    pub races: Vec<Race>,
    /// Addresses whose writes are all atomic but that several threads
    /// touch — the set the push contract inspects. `(addr, accessors≥2)`
    /// is implied; plain writes to shared addresses land in `races` or
    /// `shared_plain_writes`.
    pub shared_plain_writes: Vec<(u64, Vec<u64>)>,
    /// Addresses written (plainly) by their single accessor — the pull
    /// contract requires *all* written addresses to look like this.
    pub private_writes: usize,
    /// Total atomic ops in the kernel.
    pub atomic_ops: u64,
    /// Lowest address an atomic touched, for diagnostics when a
    /// direction forbids atomics entirely.
    pub atomic_addr_sample: Option<u64>,
    /// Atomics that act as acquire/release fences under the analyzed
    /// consistency model ([`ConsistencyModel::atomic_is_fence`]): all
    /// of them under DRF0, none under DRF1/DRFrlx.
    pub fence_atomics: u64,
    /// Atomics that block their warp under the analyzed model
    /// ([`ConsistencyModel::atomic_blocks_warp`]): all under DRF0, only
    /// the value-returning ones under DRF1/DRFrlx.
    pub blocking_atomics: u64,
    /// Total plain stores in the kernel.
    pub plain_writes: u64,
}

/// Builds the per-address access map of `kernel` across all threads and
/// analyzes it under `consistency`.
///
/// Addresses are tracked at word granularity exactly as traced; the
/// caller decides what to do with the result (per-direction contract
/// checks live in [`crate::certify`]).
pub fn analyze_kernel(kernel: &KernelTrace, consistency: ConsistencyModel) -> KernelAnalysis {
    let mut map: HashMap<u64, AddrStat> = HashMap::new();
    let mut atomic_ops = 0u64;
    let mut atomic_addr_sample: Option<u64> = None;
    let mut fence_atomics = 0u64;
    let mut blocking_atomics = 0u64;
    let mut plain_writes = 0u64;

    for t in 0..kernel.num_threads() {
        for op in kernel.thread(t) {
            match *op {
                MicroOp::Load { addr } => {
                    let s = map.entry(addr).or_default();
                    s.plain_reads += 1;
                    s.readers.add(t);
                }
                MicroOp::Store { addr } => {
                    let s = map.entry(addr).or_default();
                    s.plain_writes += 1;
                    s.writers.add(t);
                    plain_writes += 1;
                }
                MicroOp::Atomic {
                    addr,
                    returns_value,
                } => {
                    let s = map.entry(addr).or_default();
                    s.atomics += 1;
                    s.atomic_threads.add(t);
                    atomic_ops += 1;
                    atomic_addr_sample =
                        Some(atomic_addr_sample.map_or(addr, |a: u64| a.min(addr)));
                    if consistency.atomic_is_fence() {
                        fence_atomics += 1;
                    }
                    if consistency.atomic_blocks_warp(returns_value) {
                        blocking_atomics += 1;
                    }
                }
                MicroOp::Compute { .. } => {}
            }
        }
    }

    let mut class_counts = [0usize; 5];
    let mut races = Vec::new();
    let mut shared_plain_writes = Vec::new();
    let mut private_writes = 0usize;
    for (&addr, stat) in &map {
        let class = stat.classify();
        class_counts[class.index()] += 1;
        if class == AccessClass::Racy {
            races.push(Race {
                addr,
                threads: stat.sample_threads(),
                plain_writes: stat.plain_writes,
                plain_reads: stat.plain_reads,
                pair: first_conflicting_pair(kernel, addr),
            });
        } else if stat.plain_writes > 0 {
            if stat.accessors() >= 2 {
                shared_plain_writes.push((addr, stat.sample_threads()));
            } else {
                private_writes += 1;
            }
        }
    }
    races.sort_by_key(|r| r.addr);
    shared_plain_writes.sort_unstable();

    KernelAnalysis {
        addresses: map.len(),
        class_counts,
        races,
        shared_plain_writes,
        private_writes,
        atomic_ops,
        atomic_addr_sample,
        fence_atomics,
        blocking_atomics,
        plain_writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(threads: Vec<Vec<MicroOp>>) -> KernelTrace {
        KernelTrace::new(threads, 256)
    }

    fn analyze(threads: Vec<Vec<MicroOp>>) -> KernelAnalysis {
        analyze_kernel(&k(threads), ConsistencyModel::Drf1)
    }

    #[test]
    fn two_plain_writers_race() {
        let a = analyze(vec![vec![MicroOp::store(64)], vec![MicroOp::store(64)]]);
        assert_eq!(a.races.len(), 1);
        assert_eq!(a.races[0].threads, vec![0, 1]);
        assert_eq!(a.class_counts[AccessClass::Racy.index()], 1);
        assert_eq!(
            a.races[0].conflict_line(),
            "thread 0 store @0x40 conflicts with thread 1 store @0x40"
        );
    }

    #[test]
    fn writer_and_remote_reader_race() {
        let a = analyze(vec![vec![MicroOp::store(64)], vec![MicroOp::load(64)]]);
        assert_eq!(a.races.len(), 1);
        assert_eq!(a.races[0].plain_writes, 1);
        assert_eq!(a.races[0].plain_reads, 1);
        let (w, r) = a.races[0].pair.expect("pair reconstructed");
        assert_eq!(w, AccessSite::thread(0, "store", 64));
        assert_eq!(r, AccessSite::thread(1, "load", 64));
    }

    #[test]
    fn pair_picks_earliest_writer_even_when_a_reader_comes_first() {
        // Thread 0 only reads; the first plain *writer* is thread 2, and
        // the conflicting partner is the earliest other-thread access
        // (thread 0's load), not another writer.
        let a = analyze(vec![
            vec![MicroOp::load(64)],
            vec![MicroOp::load(128)],
            vec![MicroOp::compute(1), MicroOp::store(64)],
        ]);
        let race = a.races.iter().find(|r| r.addr == 64).expect("race at 0x40");
        let (w, o) = race.pair.expect("pair reconstructed");
        assert_eq!(w, AccessSite::thread(2, "store", 64));
        assert_eq!(o, AccessSite::thread(0, "load", 64));
    }

    #[test]
    fn own_read_write_is_private() {
        let a = analyze(vec![vec![MicroOp::load(64), MicroOp::store(64)]]);
        assert!(a.races.is_empty());
        assert_eq!(a.class_counts[AccessClass::ThreadPrivate.index()], 1);
        assert_eq!(a.private_writes, 1);
    }

    #[test]
    fn shared_reads_are_clean() {
        let a = analyze(vec![vec![MicroOp::load(0)], vec![MicroOp::load(0)]]);
        assert!(a.races.is_empty());
        assert_eq!(a.class_counts[AccessClass::ReadShared.index()], 1);
    }

    #[test]
    fn atomic_updates_never_race() {
        let a = analyze(vec![
            vec![MicroOp::atomic(0)],
            vec![MicroOp::atomic(0), MicroOp::load(0)],
            vec![MicroOp::load(0)],
        ]);
        assert!(a.races.is_empty());
        assert_eq!(a.class_counts[AccessClass::WriteSharedAtomic.index()], 1);
    }

    #[test]
    fn plain_writer_with_remote_atomics_is_mixed_not_racy() {
        let a = analyze(vec![
            vec![MicroOp::store(0), MicroOp::load(0)],
            vec![MicroOp::atomic(0)],
        ]);
        assert!(a.races.is_empty());
        assert_eq!(a.class_counts[AccessClass::WriteSharedMixed.index()], 1);
        // It is still a shared plain write — the push contract rejects it.
        assert_eq!(a.shared_plain_writes.len(), 1);
    }

    #[test]
    fn consistency_changes_sync_counts_not_races() {
        let threads = vec![
            vec![MicroOp::atomic(0), MicroOp::atomic_returning(64)],
            vec![MicroOp::store(128)],
        ];
        let drf0 = analyze_kernel(&k(threads.clone()), ConsistencyModel::Drf0);
        let drf1 = analyze_kernel(&k(threads.clone()), ConsistencyModel::Drf1);
        let rlx = analyze_kernel(&k(threads), ConsistencyModel::DrfRlx);
        for a in [&drf0, &drf1, &rlx] {
            assert!(a.races.is_empty());
            assert_eq!(a.atomic_ops, 2);
        }
        // DRF0: every atomic fences and blocks. DRF1/DRFrlx: none fence,
        // only the value-returning one blocks — the same split
        // `ggs_sim::sm` applies when issuing.
        assert_eq!((drf0.fence_atomics, drf0.blocking_atomics), (2, 2));
        assert_eq!((drf1.fence_atomics, drf1.blocking_atomics), (0, 1));
        assert_eq!((rlx.fence_atomics, rlx.blocking_atomics), (0, 1));
    }

    #[test]
    fn distinct_addresses_do_not_interact() {
        let a = analyze(vec![vec![MicroOp::store(0)], vec![MicroOp::store(64)]]);
        assert!(a.races.is_empty());
        assert_eq!(a.addresses, 2);
        assert_eq!(a.private_writes, 2);
    }

    #[test]
    fn thread_pair_saturates() {
        let mut p = ThreadPair::default();
        p.add(3);
        p.add(3);
        assert_eq!(p.ids().count(), 1);
        p.add(7);
        p.add(9); // ignored beyond two distinct
        assert_eq!(p.ids().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(distinct2(&[p]), 2);
    }
}
