//! The certification sweep the ISSUE acceptance criteria ask for:
//! every application × supported direction is DRF-clean and honors its
//! Table I contract on a realistic synthetic graph, the dynamic
//! protocol checker stays silent across the full coherence ×
//! consistency grid, and injected protocol bugs are *caught* (the
//! checker is not vacuously quiet).

use ggs_apps::AppKind;
use ggs_check::certify::{certify_matrix, run_protocol_checked};
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::Propagation;
use ggs_sim::check::InvariantKind;
use ggs_sim::config::{CoherenceKind, ConsistencyModel, HwConfig};
use ggs_sim::params::SystemParams;
use ggs_sim::trace::{KernelTrace, MicroOp};
use ggs_sim::Simulation;

/// A small but structurally realistic graph: the e-mail-network preset
/// (power-law degrees, the paper's most irregular input family) at a
/// scale that keeps the sweep under a second.
fn small_graph() -> ggs_graph::Csr {
    SynthConfig::preset(GraphPreset::Eml).scale(0.02).generate()
}

/// Tentpole sweep: all 6 apps (plus the extended set) × both supported
/// directions certify clean under every consistency model.
#[test]
fn full_app_direction_matrix_is_drf_clean() {
    let graph = small_graph();
    for model in ConsistencyModel::ALL {
        let reports = certify_matrix(&graph, model, true);
        // 6 paper apps + extended set, each with >= 1 direction.
        assert!(reports.len() >= AppKind::ALL.len() * 2 - AppKind::ALL.len());
        let mut saw_push = false;
        let mut saw_pull = false;
        for r in &reports {
            assert!(
                r.is_clean(),
                "{} {} not clean under {model}:\n{r}",
                r.app.mnemonic(),
                r.prop
            );
            saw_push |= r.prop == Propagation::Push;
            saw_pull |= r.prop == Propagation::Pull;
        }
        assert!(saw_push && saw_pull);
    }
}

/// The pull contract is not vacuous: pull traces really contain zero
/// atomics, and push traces really contain some (so the certification
/// is distinguishing the directions, not passing everything).
#[test]
fn matrix_distinguishes_directions() {
    let graph = small_graph();
    let reports = certify_matrix(&graph, ConsistencyModel::Drf0, false);
    for r in &reports {
        match r.prop {
            Propagation::Pull => assert_eq!(r.atomic_ops, 0, "{r}"),
            Propagation::Push => assert!(r.atomic_ops > 0, "{r}"),
            Propagation::PushPull => assert!(r.atomic_ops > 0, "{r}"),
            // Hybrid atomic counts depend on how many iterations
            // realize push; the direction split itself is pinned by
            // certify::tests::hybrid_certifies_each_kernel_under_its_realized_direction.
            Propagation::Hybrid => {}
        }
    }
}

/// Dynamic pass: a push and a pull workload run under all six
/// coherence × consistency points without a single protocol-invariant
/// violation.
#[test]
fn protocol_checker_is_silent_across_the_grid() {
    let graph = small_graph();
    let params = SystemParams::default();
    for hw in HwConfig::all() {
        for prop in [Propagation::Push, Propagation::Pull] {
            let violations = run_protocol_checked(AppKind::Bfs, &graph, prop, hw, &params);
            assert!(
                violations.is_empty(),
                "BFS {prop} under {}: {violations:?}",
                hw.code()
            );
        }
    }
}

/// One thread per word: a trivially clean kernel used to seed cache
/// state for the injection tests below.
fn touch_kernel(threads: u64) -> KernelTrace {
    let trace: Vec<Vec<MicroOp>> = (0..threads)
        .map(|t| {
            vec![
                MicroOp::load(0x1000 + t * 4),
                MicroOp::store(0x1000 + t * 4),
            ]
        })
        .collect();
    KernelTrace::new(trace, 32)
}

/// Negative test: planting ownership in an L1 behind the registry's
/// back is caught by the audit (owner-map mismatch under DeNovo, and
/// double ownership trips SWMR).
#[test]
fn injected_broken_ownership_is_caught() {
    let mut sim = Simulation::new(
        SystemParams::default(),
        HwConfig::new(CoherenceKind::DeNovo, ConsistencyModel::Drf1),
    );
    sim.enable_protocol_checker();
    sim.run_kernel(&touch_kernel(32));
    assert_eq!(sim.take_protocol_violations(), Vec::new());

    // Thread 0's store registered line 0x1000>>6 to SM 0; plant the
    // same line Owned in SM 1.
    sim.debug_hooks().force_owned(1, 0x1000 >> 6);
    sim.audit_protocol();
    let violations = sim.take_protocol_violations();
    assert!(
        violations.iter().any(|v| v.kind == InvariantKind::Swmr),
        "{violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::OwnerMapMismatch && v.sm == 1),
        "{violations:?}"
    );
}

/// Negative test: an L1 that skips its self-invalidation at an acquire
/// is caught holding stale lines (and only once — the injection is
/// one-shot, so the following kernel is clean again).
#[test]
fn injected_skipped_invalidation_is_caught() {
    let mut sim = Simulation::new(
        SystemParams::default(),
        HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::Drf0),
    );
    sim.enable_protocol_checker();
    sim.run_kernel(&touch_kernel(8));
    assert_eq!(sim.take_protocol_violations(), Vec::new());

    sim.debug_hooks().skip_next_invalidation();
    sim.run_kernel(&touch_kernel(8));
    let violations = sim.take_protocol_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::StaleAfterAcquire && v.sm == 0),
        "{violations:?}"
    );

    sim.run_kernel(&touch_kernel(8));
    assert_eq!(sim.take_protocol_violations(), Vec::new());
}

/// Under GPU coherence no L1 may ever hold an Owned line; the injector
/// proves the checker would see one.
#[test]
fn injected_gpu_ownership_is_caught() {
    let mut sim = Simulation::new(
        SystemParams::default(),
        HwConfig::new(CoherenceKind::Gpu, ConsistencyModel::DrfRlx),
    );
    sim.enable_protocol_checker();
    sim.debug_hooks().force_owned(3, 0x77);
    sim.audit_protocol();
    let violations = sim.take_protocol_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::GpuOwnedLine && v.sm == 3 && v.line == 0x77),
        "{violations:?}"
    );
}
