//! Property tests for the static DRF analyzer: randomized traces with
//! a known verdict, at every consistency level. The race rule does not
//! depend on the consistency model (all three DRF models require
//! race-freedom), so the properties must hold uniformly — only the
//! synchronization counts may differ.

use ggs_check::drf::{analyze_kernel, AccessClass};
use ggs_sim::config::ConsistencyModel;
use ggs_sim::trace::{KernelTrace, MicroOp};
use proptest::prelude::*;

/// Ops confined to a thread-private address region: thread `t` only
/// touches word `t`, so no cross-thread conflict can arise.
fn private_ops(thread: u64, n: usize, stores: bool) -> Vec<MicroOp> {
    let addr = thread * 4;
    (0..n)
        .map(|i| {
            if stores && i % 2 == 1 {
                MicroOp::store(addr)
            } else {
                MicroOp::load(addr)
            }
        })
        .collect()
}

proptest! {
    /// Two threads plain-storing one shared address is flagged as a
    /// race under every consistency model, no matter how much clean
    /// private noise surrounds it.
    #[test]
    fn racy_trace_is_flagged(
        threads in 2usize..20,
        noise in 0usize..8,
        shared_word in 0u64..64,
        racer_b in 1usize..19,
    ) {
        let shared = 0x10_000 + shared_word * 4;
        let b = (racer_b % (threads - 1)) + 1; // any thread but 0
        let mut trace: Vec<Vec<MicroOp>> = (0..threads as u64)
            .map(|t| private_ops(t, noise, true))
            .collect();
        trace[0].push(MicroOp::store(shared));
        trace[b].push(MicroOp::store(shared));
        for model in ConsistencyModel::ALL {
            let analysis = analyze_kernel(&KernelTrace::new(trace.clone(), 256), model);
            prop_assert_eq!(analysis.races.len(), 1);
            prop_assert_eq!(analysis.races[0].addr, shared);
            prop_assert_eq!(
                analysis.class_counts[AccessClass::Racy.index()], 1
            );
        }
    }

    /// A trace whose only shared accesses are atomics (plus private
    /// loads/stores and shared plain reads) passes under every
    /// consistency model.
    #[test]
    fn clean_atomic_trace_passes(
        threads in 1usize..20,
        noise in 0usize..8,
        atomics_per_thread in 1usize..4,
        shared_words in 1u64..8,
        returning_bit in 0u8..2,
    ) {
        let returning = returning_bit == 1;
        let trace: Vec<Vec<MicroOp>> = (0..threads as u64)
            .map(|t| {
                let mut ops = private_ops(t, noise, true);
                ops.push(MicroOp::load(0x20_000)); // read-shared word
                for i in 0..atomics_per_thread as u64 {
                    let addr = 0x30_000 + (i % shared_words) * 4;
                    ops.push(if returning {
                        MicroOp::atomic_returning(addr)
                    } else {
                        MicroOp::atomic(addr)
                    });
                }
                ops
            })
            .collect();
        for model in ConsistencyModel::ALL {
            let analysis = analyze_kernel(&KernelTrace::new(trace.clone(), 256), model);
            prop_assert_eq!(analysis.races.len(), 0);
            prop_assert_eq!(analysis.class_counts[AccessClass::Racy.index()], 0);
            // The sync counts follow the model's predicates exactly.
            let expected_fences = if model.atomic_is_fence() { analysis.atomic_ops } else { 0 };
            prop_assert_eq!(analysis.fence_atomics, expected_fences);
            let expected_blocking = if model.atomic_blocks_warp(returning) {
                analysis.atomic_ops
            } else {
                0
            };
            prop_assert_eq!(analysis.blocking_atomics, expected_blocking);
        }
    }

    /// A single remote plain *reader* against a plain writer races, but
    /// the same reader against atomic-only writers does not — the
    /// boundary the benign-publication idiom sits on.
    #[test]
    fn plain_reader_races_only_with_plain_writer(
        readers in 1usize..8,
        shared_word in 0u64..64,
    ) {
        let shared = 0x40_000 + shared_word * 4;
        let mut with_plain: Vec<Vec<MicroOp>> =
            (0..readers).map(|_| vec![MicroOp::load(shared)]).collect();
        let mut with_atomic = with_plain.clone();
        with_plain.push(vec![MicroOp::store(shared)]);
        with_atomic.push(vec![MicroOp::atomic(shared)]);
        for model in ConsistencyModel::ALL {
            let racy = analyze_kernel(&KernelTrace::new(with_plain.clone(), 256), model);
            prop_assert_eq!(racy.races.len(), 1);
            let clean = analyze_kernel(&KernelTrace::new(with_atomic.clone(), 256), model);
            prop_assert_eq!(clean.races.len(), 0);
        }
    }
}
