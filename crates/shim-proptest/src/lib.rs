//! Vendored, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the registry dependency with this path crate of the same
//! name. It keeps the surface the tests are written against —
//! `proptest!`, strategies with `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `prop::collection::vec`, `Just`, `BoxedStrategy`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros — with
//! two simplifications: inputs are drawn from a fixed per-case seed
//! (fully deterministic, no persistence files), and failing cases are
//! reported **without shrinking** (the generated input is printed
//! as-is).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5ba5_c0de_b055_e5e5,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply map of a 64-bit draw onto [0, bound).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy trait: how to produce one random value of `Self::Value`.
pub mod strategy {
    use super::TestRng;
    use std::fmt::Debug;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+);)+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + rng.below(span) as $ty
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and driver.
pub mod test_runner {
    use super::TestRng;

    /// Number of cases to run per property (no other knobs).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases per property test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Drives one property over `config.cases` deterministic cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        name_seed: u64,
    }

    impl TestRunner {
        /// Creates a runner whose case seeds are derived from `name`.
        pub fn new(config: Config, name: &str) -> Self {
            // FNV-1a over the test name: distinct properties see
            // distinct streams, reruns see identical ones.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                config,
                name_seed: h,
            }
        }

        /// Runs `case` once per seed; panics (with the case index) on
        /// the first failure. No shrinking is attempted.
        pub fn run<F: FnMut(&mut TestRng) -> Result<(), String>>(&self, mut case: F) {
            for i in 0..self.config.cases {
                let seed = self
                    .name_seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64));
                let mut rng = TestRng::from_seed(seed);
                if let Err(msg) = case(&mut rng) {
                    panic!(
                        "proptest case {i}/{} failed (seed {seed:#x}): {msg}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

/// The `proptest!` macro: wraps each contained function in a
/// multi-case deterministic runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(|__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_out: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_out
            });
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with formatting) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        $crate::prop_assert!(($a) == ($b), $($fmt)+)
    };
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        $crate::prop_assert!(($a) != ($b), $($fmt)+)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn map_preserves_evenness(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u32..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_hits_every_arm(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 64..65)) {
            prop_assert!(v.contains(&1) && v.contains(&2));
        }

        #[test]
        fn flat_map_couples_values((n, x) in (1u32..50).prop_flat_map(|n| (Just(n), 0u32..n))) {
            prop_assert!(x < n);
        }
    }

    #[test]
    fn failures_panic_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            let runner = crate::test_runner::TestRunner::new(
                crate::test_runner::Config::with_cases(4),
                "doomed",
            );
            runner.run(|_| Err("nope".to_owned()));
        });
        let msg = *result
            .expect_err("must panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("nope") && msg.contains("case 0"), "{msg}");
    }
}
