//! Single-Source Shortest Path (SSSP) — static traversal, source
//! control, source information (Table III).
//!
//! Bellman-Ford style with an *updated* flag per vertex: only vertices
//! relaxed in the previous iteration propagate (the frontier). The
//! push variant elides the whole inner loop for inactive sources after
//! a single flag load; the pull variant must test every in-neighbor's
//! flag inside the inner loop.
//!
//! Each iteration launches two kernels, as in Pannotia: a relax kernel
//! and a per-vertex settle kernel that folds `newdist` into `dist` and
//! rebuilds the flags.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Source vertex of every SSSP run.
pub const ROOT: u32 = 0;

/// Maximum Bellman-Ford iterations simulated per run (the reference
/// implementation always runs to convergence; the trace replay is
/// capped to bound simulation cost — see EXPERIMENTS.md).
pub const MAX_ITERATIONS: u32 = 5;

/// Distance value for unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Host-reference SSSP from [`ROOT`]: full Bellman-Ford to convergence.
///
/// Unweighted graphs are treated as having unit weights.
///
/// # Example
///
/// ```
/// use ggs_apps::sssp;
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3)])
///     .symmetric(true)
///     .build();
/// assert_eq!(sssp::reference(&g), vec![0, 1, 2, 3]);
/// ```
pub fn reference(graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[ROOT as usize] = 0;
    let mut active = vec![ROOT];
    while !active.is_empty() {
        let mut changed = std::collections::BTreeSet::new();
        for &s in &active {
            let ds = dist[s as usize];
            let weights = graph.edge_weights(s);
            for (i, &t) in graph.neighbors(s).iter().enumerate() {
                let w = weights.map_or(1, |w| w[i]);
                let cand = ds.saturating_add(w);
                if cand < dist[t as usize] {
                    dist[t as usize] = cand;
                    changed.insert(t);
                }
            }
        }
        active = changed.into_iter().collect();
    }
    dist
}

/// Per-iteration frontiers (sets of *updated* vertices), starting with
/// `[ROOT]`, until convergence. Used by the trace replay and by the
/// hybrid direction policy (the frontier's density decides push vs.
/// pull per iteration).
pub fn frontiers(graph: &Csr) -> Vec<Vec<u32>> {
    let n = graph.num_vertices() as usize;
    let mut dist = vec![INF; n];
    if n == 0 {
        return Vec::new();
    }
    dist[ROOT as usize] = 0;
    let mut fronts = Vec::new();
    let mut active = vec![ROOT];
    while !active.is_empty() {
        fronts.push(active.clone());
        let mut changed = std::collections::BTreeSet::new();
        for &s in &active {
            let ds = dist[s as usize];
            let weights = graph.edge_weights(s);
            for (i, &t) in graph.neighbors(s).iter().enumerate() {
                let w = weights.map_or(1, |w| w[i]);
                let cand = ds.saturating_add(w);
                if cand < dist[t as usize] {
                    dist[t as usize] = cand;
                    changed.insert(t);
                }
            }
        }
        active = changed.into_iter().collect();
    }
    fronts
}

/// The realized per-iteration directions of a hybrid SSSP run on
/// `graph`: each Bellman-Ford iteration runs push while its updated-
/// vertex frontier is below [`Propagation::HYBRID_DENSITY_THRESHOLD`]
/// of the vertex count and pull once it reaches it. Pure function of
/// the graph, like the kernel stream itself.
pub fn hybrid_directions(graph: &Csr) -> Vec<Propagation> {
    let n = graph.num_vertices().max(1);
    frontiers(graph)
        .iter()
        .take(MAX_ITERATIONS as usize)
        .map(|front| Propagation::hybrid_direction_for_density(front.len() as f64 / n as f64))
        .collect()
}

/// The realized per-**kernel** direction schedule of a hybrid SSSP
/// run: every iteration emits a relax kernel and a settle kernel, both
/// labeled with the iteration's direction. Mirrors the `generate`
/// emission order exactly — the contract certification and the trace
/// cache's policy fingerprint both key on this.
pub fn hybrid_schedule(graph: &Csr) -> Vec<Propagation> {
    hybrid_directions(graph)
        .into_iter()
        .flat_map(|d| [d, d])
        .collect()
}

/// Generates the kernel sequence of an SSSP run (two kernels per
/// simulated iteration), handing each finished trace to `run` by
/// value. The stream depends only on `(graph, prop, tb_size)`, so it
/// is safe to materialize once and replay across configuration cells.
/// Under [`Propagation::Hybrid`] each iteration independently runs the
/// push or pull relax variant as chosen by [`hybrid_directions`].
///
/// # Panics
///
/// Panics if `prop` is [`Propagation::PushPull`].
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert_ne!(
        prop,
        Propagation::PushPull,
        "SSSP has static traversal: use Push, Pull, or Hybrid"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let dist = space.array("dist", n as u64);
    let newdist = space.array("newdist", n as u64);
    let flag = space.array("flag", n as u64);

    let fronts = frontiers(graph);
    let hybrid_dirs = (prop == Propagation::Hybrid).then(|| hybrid_directions(graph));
    let mut active = vec![false; n as usize];

    for (iter, front) in fronts.iter().take(MAX_ITERATIONS as usize).enumerate() {
        active.fill(false);
        for &v in front {
            active[v as usize] = true;
        }

        let dir = hybrid_dirs.as_ref().map_or(prop, |dirs| dirs[iter]);
        let relax = match dir {
            Propagation::Push => vertex_kernel(n, tb_size, |s, ops| {
                // Control at source: one flag load elides everything.
                ops.push(MicroOp::load(flag.addr(s as u64)));
                if !active[s as usize] {
                    return;
                }
                // Hoisted source information.
                ops.push(MicroOp::load(dist.addr(s as u64)));
                for e in graph.edge_range(s) {
                    arrays.load_edge_target(e as u64, ops);
                    arrays.load_edge_weight(e as u64, ops);
                    ops.push(MicroOp::compute(2));
                    let t = graph.col_idx()[e as usize];
                    ops.push(MicroOp::atomic(newdist.addr(t as u64)));
                }
            }),
            Propagation::Pull => vertex_kernel(n, tb_size, |t, ops| {
                let mut any = false;
                for e in graph.edge_range(t) {
                    arrays.load_edge_target(e as u64, ops);
                    let s = graph.col_idx()[e as usize];
                    // Control in the inner loop: flag tested per edge.
                    ops.push(MicroOp::load(flag.addr(s as u64)));
                    if active[s as usize] {
                        ops.push(MicroOp::load(dist.addr(s as u64)));
                        arrays.load_edge_weight(e as u64, ops);
                        ops.push(MicroOp::compute(2));
                        any = true;
                    }
                }
                if any {
                    ops.push(MicroOp::store(newdist.addr(t as u64)));
                }
            }),
            _ => unreachable!("direction filtered by supported_propagations"),
        };
        run(relax);

        // Settle kernel: identical for both variants.
        let settle = vertex_kernel(n, tb_size, |v, ops| {
            ops.push(MicroOp::load(newdist.addr(v as u64)));
            ops.push(MicroOp::load(dist.addr(v as u64)));
            ops.push(MicroOp::compute(1));
            ops.push(MicroOp::store(dist.addr(v as u64)));
            ops.push(MicroOp::store(flag.addr(v as u64)));
        });
        run(settle);
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let n = graph.num_vertices() as u64;
    let _ = space.array("dist", n);
    let _ = space.array("newdist", n);
    let _ = space.array("flag", n);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn weighted_chain(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
            .with_hashed_weights(4)
    }

    #[test]
    fn reference_unit_weights() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (0, 2), (1, 3), (3, 4)])
            .symmetric(true)
            .build();
        assert_eq!(reference(&g), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn reference_weighted_prefix_sums() {
        let g = weighted_chain(6);
        let d = reference(&g);
        assert_eq!(d[0], 0);
        for v in 1..6u32 {
            let w = g.edge_weights(v - 1).unwrap()[g.neighbors(v - 1).binary_search(&v).unwrap()];
            assert_eq!(d[v as usize], d[(v - 1) as usize] + w);
        }
    }

    #[test]
    fn reference_unreachable_is_inf() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 0)]).build();
        let d = reference(&g);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn frontiers_grow_then_shrink() {
        let g = GraphBuilder::new(64)
            .edges((0..63).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let f = frontiers(&g);
        assert_eq!(f[0], vec![0]);
        assert_eq!(f[1], vec![1]);
        assert_eq!(f.len(), 64);
    }

    #[test]
    fn push_elides_inactive_sources() {
        let g = GraphBuilder::new(40)
            .edges((0..39).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let mut first = true;
        generate(&g, Propagation::Push, 256, &mut |k| {
            if !first {
                return;
            }
            first = false;
            // Iteration 0: only the root is active.
            assert!(k.thread(0).len() > 2, "root does real work");
            assert_eq!(k.thread(20).len(), 1, "inactive source = 1 flag load");
        });
    }

    #[test]
    fn pull_tests_flags_per_edge() {
        let g = GraphBuilder::new(40)
            .edges((0..39).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let mut first = true;
        generate(&g, Propagation::Pull, 256, &mut |k| {
            if !first {
                return;
            }
            first = false;
            // Vertex 20 (inactive neighbors): 2 edges x (col_idx + flag).
            assert_eq!(k.thread(20).len(), 4);
        });
    }

    #[test]
    fn kernel_count_is_two_per_iteration() {
        let g = weighted_chain(32);
        let mut kernels = 0;
        generate(&g, Propagation::Push, 256, &mut |_| kernels += 1);
        let fronts = frontiers(&g).len().min(MAX_ITERATIONS as usize);
        assert_eq!(kernels, 2 * fronts);
    }

    /// A star from the root: iteration 0's frontier is the root alone
    /// (sparse → push), iteration 1's frontier is every leaf the root
    /// just relaxed (dense → pull).
    fn star(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((1..n).map(|v| (0, v)))
            .edges((1..n - 1).map(|v| (v, v + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn hybrid_switches_on_dense_frontier() {
        let dirs = hybrid_directions(&star(128));
        assert_eq!(dirs[0], Propagation::Push, "root-only frontier is sparse");
        assert!(
            dirs.contains(&Propagation::Pull),
            "dense frontier must flip to pull: {dirs:?}"
        );
    }

    #[test]
    fn hybrid_schedule_mirrors_emitted_kernels() {
        for g in [weighted_chain(64), star(128)] {
            let schedule = hybrid_schedule(&g);
            let mut realized = 0;
            generate(&g, Propagation::Hybrid, 256, &mut |_| realized += 1);
            assert_eq!(schedule.len(), realized, "one schedule entry per kernel");
        }
    }

    #[test]
    fn hybrid_on_sparse_frontiers_matches_push_stream() {
        // A 64-chain's frontier is one vertex per iteration — always
        // below the threshold, so hybrid degenerates to pure push.
        let g = weighted_chain(64);
        let mut push = Vec::new();
        generate(&g, Propagation::Push, 256, &mut |k| push.push(k));
        let mut hybrid = Vec::new();
        generate(&g, Propagation::Hybrid, 256, &mut |k| hybrid.push(k));
        assert_eq!(push, hybrid);
    }
}
