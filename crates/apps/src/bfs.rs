//! Breadth-First Search (BFS) — **extension application** (not part of
//! the paper's six-workload matrix; added per §VIII's outlook of
//! extending the taxonomy to more algorithms).
//!
//! Level-synchronous BFS from a single root: static traversal, source
//! control (the frontier predicate elides whole inner loops for push),
//! symmetric information (both variants exchange only the level word).
//! Structurally it is the forward phase of Betweenness Centrality
//! without the path counting, which makes it a useful minimal probe of
//! the frontier-control dimension.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Root vertex of every BFS run.
pub const ROOT: u32 = 0;

/// Maximum levels simulated per run (the reference always runs the full
/// traversal).
pub const MAX_LEVELS: u32 = 12;

/// Level value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Host-reference BFS from [`ROOT`]: per-vertex levels (hop distances).
///
/// # Example
///
/// ```
/// use ggs_apps::bfs;
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .edges([(0, 1), (1, 2), (2, 3)])
///     .symmetric(true)
///     .build();
/// assert_eq!(bfs::reference(&g), vec![0, 1, 2, 3]);
/// ```
pub fn reference(graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices() as usize;
    let mut level = vec![UNREACHED; n];
    if n == 0 {
        return level;
    }
    level[ROOT as usize] = 0;
    let mut frontier = vec![ROOT];
    let mut l = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &s in &frontier {
            for &t in graph.neighbors(s) {
                if level[t as usize] == UNREACHED {
                    level[t as usize] = l + 1;
                    next.push(t);
                }
            }
        }
        frontier = next;
        l += 1;
    }
    level
}

/// The realized per-level directions of a hybrid BFS run on `graph`:
/// each level runs push while the frontier (vertices at that level) is
/// below [`Propagation::HYBRID_DENSITY_THRESHOLD`] of the vertex count
/// and pull once it reaches it. Pure function of the graph — the same
/// invariant the kernel stream itself obeys.
pub fn hybrid_directions(graph: &Csr) -> Vec<Propagation> {
    let n = graph.num_vertices();
    let level = reference(graph);
    let max_level = level
        .iter()
        .filter(|&&l| l != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    (0..max_level.min(MAX_LEVELS))
        .map(|l| {
            let frontier = level.iter().filter(|&&x| x == l).count();
            Propagation::hybrid_direction_for_density(frontier as f64 / n.max(1) as f64)
        })
        .collect()
}

/// The realized per-**kernel** direction schedule of a hybrid BFS run:
/// a push level emits one kernel, a pull level emits the gather kernel
/// plus the local settle kernel (both labeled pull). Mirrors the
/// `generate` emission order exactly, so element *i* is the direction
/// kernel *i* actually ran — the contract certification and the trace
/// cache's policy fingerprint both key on this.
pub fn hybrid_schedule(graph: &Csr) -> Vec<Propagation> {
    hybrid_directions(graph)
        .into_iter()
        .flat_map(|d| {
            if d == Propagation::Pull {
                vec![Propagation::Pull; 2]
            } else {
                vec![Propagation::Push]
            }
        })
        .collect()
}

/// Generates the kernel sequence of a BFS run (one kernel per level,
/// plus a settle kernel per pull level), handing each finished trace to
/// `run` by value. The stream depends only on `(graph, prop, tb_size)`,
/// so it is safe to materialize once and replay across configuration
/// cells. Under [`Propagation::Hybrid`] each level independently runs
/// the push or pull variant as chosen by [`hybrid_directions`].
///
/// # Panics
///
/// Panics if `prop` is [`Propagation::PushPull`].
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert_ne!(
        prop,
        Propagation::PushPull,
        "BFS has static traversal: use Push, Pull, or Hybrid"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let level_arr = space.array("level", n as u64);

    let level = reference(graph);
    let max_level = level
        .iter()
        .filter(|&&l| l != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);

    let hybrid_dirs = (prop == Propagation::Hybrid).then(|| hybrid_directions(graph));

    for l in 0..max_level.min(MAX_LEVELS) {
        let dir = hybrid_dirs.as_ref().map_or(prop, |dirs| dirs[l as usize]);
        let kernel = match dir {
            Propagation::Push => vertex_kernel(n, tb_size, |s, ops| {
                // Source control: one level load elides off-frontier
                // sources entirely.
                ops.push(MicroOp::load(level_arr.addr(s as u64)));
                if level[s as usize] != l {
                    return;
                }
                for e in graph.edge_range(s) {
                    arrays.load_edge_target(e as u64, ops);
                    let t = graph.col_idx()[e as usize];
                    if level[t as usize] == l + 1 {
                        // Racy benign write: first writer wins.
                        ops.push(MicroOp::atomic(level_arr.addr(t as u64)));
                    }
                }
            }),
            Propagation::Pull => vertex_kernel(n, tb_size, |t, ops| {
                ops.push(MicroOp::load(level_arr.addr(t as u64)));
                if level[t as usize] < l + 1 {
                    return; // already settled
                }
                for e in graph.edge_range(t) {
                    arrays.load_edge_target(e as u64, ops);
                    let s = graph.col_idx()[e as usize];
                    ops.push(MicroOp::load(level_arr.addr(s as u64)));
                    if level[s as usize] == l {
                        // Found a frontier parent; real kernels break out
                        // here, so remaining edges are skipped.
                        break;
                    }
                }
            }),
            _ => unreachable!("direction filtered by supported_propagations"),
        };
        run(kernel);

        // Pull settles discovered vertices in a second, purely local
        // kernel: the gather kernel reads `level` remotely, so storing
        // it there would be an unmarked read/write race (see
        // docs/checking.md). One thread per vertex, own word only.
        if dir == Propagation::Pull {
            let settle = vertex_kernel(n, tb_size, |v, ops| {
                ops.push(MicroOp::load(level_arr.addr(v as u64)));
                if level[v as usize] == l + 1 {
                    ops.push(MicroOp::store(level_arr.addr(v as u64)));
                }
            });
            run(settle);
        }
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let _ = space.array("level", graph.num_vertices() as u64);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn path(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn reference_levels_on_path() {
        assert_eq!(reference(&path(5)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reference_unreachable() {
        let g = GraphBuilder::new(3).edge(0, 1).symmetric(true).build();
        assert_eq!(reference(&g), vec![0, 1, UNREACHED]);
    }

    #[test]
    fn reference_matches_unit_weight_sssp() {
        let g = GraphBuilder::new(64)
            .edges(
                (0..64u32)
                    .map(|i| (i, (i * 7 + 1) % 64))
                    .filter(|&(a, b)| a != b),
            )
            .symmetric(true)
            .build();
        let bfs = reference(&g);
        let sssp = crate::sssp::reference(&g);
        for v in 0..64 {
            let want = if sssp[v] == crate::sssp::INF {
                UNREACHED
            } else {
                sssp[v]
            };
            assert_eq!(bfs[v], want, "vertex {v}");
        }
    }

    #[test]
    fn push_elides_off_frontier() {
        let g = path(32);
        let mut first = true;
        generate(&g, Propagation::Push, 256, &mut |k| {
            if first {
                assert!(k.thread(0).len() > 1);
                assert_eq!(k.thread(20).len(), 1);
                first = false;
            }
        });
    }

    #[test]
    fn pull_early_exits_on_found_parent() {
        let g = path(32);
        let mut first = true;
        generate(&g, Propagation::Pull, 256, &mut |k| {
            if first {
                // Vertex 1 finds its parent on the first in-edge:
                // 1 own-level load + col_idx + parent level + store.
                assert!(k.thread(1).len() <= 4);
                first = false;
            }
        });
    }

    #[test]
    fn kernel_count_is_levels() {
        let g = path(6);
        let mut kernels = 0;
        generate(&g, Propagation::Push, 256, &mut |_| kernels += 1);
        assert_eq!(kernels, 5);
    }

    /// A graph whose BFS frontier starts sparse and then explodes:
    /// root → 4 hubs → a dense middle tier → a sparse tail. The
    /// middle-tier frontier (level 2) is above the density threshold
    /// *while it still has the tail to discover*, so the hybrid run
    /// must realize pull on that level.
    fn fanout(n: u32) -> Csr {
        let hubs = 4u32;
        let mid_end = n - 32;
        GraphBuilder::new(n)
            .edges((1..=hubs).map(|h| (0, h)))
            .edges((hubs + 1..mid_end).map(|v| (1 + (v % hubs), v)))
            .edges((mid_end..n).map(|v| (hubs + 1 + (v % (mid_end - hubs - 1)), v)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn hybrid_switches_push_to_pull_on_fanout() {
        let dirs = hybrid_directions(&fanout(256));
        assert_eq!(dirs[0], Propagation::Push, "root frontier is sparse");
        assert!(
            dirs.contains(&Propagation::Pull),
            "exploded frontier must flip to pull: {dirs:?}"
        );
    }

    #[test]
    fn hybrid_schedule_mirrors_emitted_kernels() {
        for g in [path(32), fanout(256)] {
            let schedule = hybrid_schedule(&g);
            let mut kernels = 0;
            generate(&g, Propagation::Hybrid, 256, &mut |_| kernels += 1);
            assert_eq!(schedule.len(), kernels, "one schedule entry per kernel");
        }
    }

    #[test]
    fn hybrid_on_sparse_frontiers_matches_push_stream() {
        // A path's frontier is one vertex per level — always below the
        // threshold, so the hybrid stream degenerates to pure push.
        let g = path(32);
        let mut push = Vec::new();
        generate(&g, Propagation::Push, 256, &mut |k| push.push(k));
        let mut hybrid = Vec::new();
        generate(&g, Propagation::Hybrid, 256, &mut |k| hybrid.push(k));
        assert_eq!(push, hybrid);
    }
}
