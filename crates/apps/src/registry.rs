//! Application registry: the Table III rows and a uniform dispatch
//! surface for workload construction.

use std::fmt;
use std::str::FromStr;

use ggs_graph::Csr;
use ggs_model::taxonomy::{AlgoBias, AlgoProfile, Propagation};
use ggs_sim::trace::KernelTrace;

/// One of the paper's six applications (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// PageRank.
    Pr,
    /// Single-Source Shortest Path.
    Sssp,
    /// Maximal Independent Set.
    Mis,
    /// Graph Coloring.
    Clr,
    /// Betweenness Centrality.
    Bc,
    /// Connected Components (ECL-CC).
    Cc,
    /// Breadth-First Search — extension application beyond the paper's
    /// six-workload matrix (not in [`AppKind::ALL`]; see
    /// [`AppKind::EXTENDED`]).
    Bfs,
}

impl AppKind {
    /// All six applications in Table III order (the paper's workload
    /// matrix).
    pub const ALL: [AppKind; 6] = [
        AppKind::Pr,
        AppKind::Sssp,
        AppKind::Mis,
        AppKind::Clr,
        AppKind::Bc,
        AppKind::Cc,
    ];

    /// Extension applications beyond the paper's matrix (§VIII outlook).
    pub const EXTENDED: [AppKind; 1] = [AppKind::Bfs];

    /// Table III mnemonic (`PR`, `SSSP`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AppKind::Pr => "PR",
            AppKind::Sssp => "SSSP",
            AppKind::Mis => "MIS",
            AppKind::Clr => "CLR",
            AppKind::Bc => "BC",
            AppKind::Cc => "CC",
            AppKind::Bfs => "BFS",
        }
    }

    /// The application's algorithmic-property row from Table III.
    pub fn algo_profile(self) -> AlgoProfile {
        match self {
            AppKind::Pr => AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Source),
            AppKind::Sssp => AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Source),
            AppKind::Mis => AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Symmetric),
            AppKind::Clr => AlgoProfile::new_static(AlgoBias::Symmetric, AlgoBias::Target),
            AppKind::Bc => AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Symmetric),
            AppKind::Cc => AlgoProfile::new_dynamic(),
            AppKind::Bfs => AlgoProfile::new_static(AlgoBias::Source, AlgoBias::Symmetric),
        }
    }

    /// Propagation variants this application implements.
    ///
    /// Every static-traversal app implements pull and push; the
    /// frontier-driven ones whose producers expose an active set (BFS,
    /// SSSP) additionally implement the frontier-adaptive
    /// [`Propagation::Hybrid`] policy. PR does *not* — its producer has
    /// no active set (every vertex is live every iteration), so a
    /// density switch would degenerate to always-pull. Dynamic
    /// traversals (CC) remain push+pull only.
    pub fn supported_propagations(self) -> &'static [Propagation] {
        match self {
            AppKind::Sssp | AppKind::Bfs => {
                &[Propagation::Pull, Propagation::Push, Propagation::Hybrid]
            }
            AppKind::Cc => &[Propagation::PushPull],
            AppKind::Pr | AppKind::Mis | AppKind::Clr | AppKind::Bc => {
                &[Propagation::Pull, Propagation::Push]
            }
        }
    }

    /// `true` if the application needs edge weights (SSSP).
    pub fn needs_weights(self) -> bool {
        matches!(self, AppKind::Sssp)
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an unknown application mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAppError(String);

impl fmt::Display for ParseAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown application {:?} (expected one of PR, SSSP, MIS, CLR, BC, CC)",
            self.0
        )
    }
}

impl std::error::Error for ParseAppError {}

impl FromStr for AppKind {
    type Err = ParseAppError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "PR" => Ok(AppKind::Pr),
            "SSSP" => Ok(AppKind::Sssp),
            "MIS" => Ok(AppKind::Mis),
            "CLR" => Ok(AppKind::Clr),
            "BC" => Ok(AppKind::Bc),
            "CC" => Ok(AppKind::Cc),
            "BFS" => Ok(AppKind::Bfs),
            _ => Err(ParseAppError(s.to_owned())),
        }
    }
}

/// An application bound to an input graph — one of the paper's 36
/// workloads.
///
/// # Example
///
/// ```
/// use ggs_apps::{AppKind, Workload};
/// use ggs_graph::GraphBuilder;
/// use ggs_model::Propagation;
///
/// let g = GraphBuilder::new(8)
///     .edges((0..7).map(|i| (i, i + 1)))
///     .symmetric(true)
///     .build();
/// let w = Workload::new(AppKind::Cc, &g);
/// let mut kernels = 0;
/// w.generate(Propagation::PushPull, 256, &mut |_| kernels += 1);
/// assert!(kernels > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Workload<'g> {
    app: AppKind,
    graph: &'g Csr,
}

impl<'g> Workload<'g> {
    /// Binds an application to a graph.
    pub fn new(app: AppKind, graph: &'g Csr) -> Self {
        Self { app, graph }
    }

    /// The application.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// The input graph.
    pub fn graph(&self) -> &'g Csr {
        self.graph
    }

    /// The workload's address map (`(array name, base, bytes)` per
    /// region), matching the layout `generate` uses; see each app's
    /// `memory_map`.
    pub fn memory_map(&self) -> Vec<(String, u64, u64)> {
        match self.app {
            AppKind::Pr => crate::pr::memory_map(self.graph),
            AppKind::Sssp => crate::sssp::memory_map(self.graph),
            AppKind::Mis => crate::mis::memory_map(self.graph),
            AppKind::Clr => crate::clr::memory_map(self.graph),
            AppKind::Bc => crate::bc::memory_map(self.graph),
            AppKind::Cc => crate::cc::memory_map(self.graph),
            AppKind::Bfs => crate::bfs::memory_map(self.graph),
        }
    }

    /// Generates the workload's kernel sequence under propagation
    /// `prop`, feeding each kernel trace to `run` (streamed so only one
    /// kernel's trace is live at a time).
    ///
    /// # Panics
    ///
    /// Panics if `prop` is not supported by the application (see
    /// [`AppKind::supported_propagations`]).
    pub fn generate(&self, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(&KernelTrace)) {
        self.produce(prop, tb_size, &mut |k| run(&k));
    }

    /// Like [`Workload::generate`], but hands each kernel trace to
    /// `run` *by value*, letting the consumer keep it without a copy.
    ///
    /// The emitted stream is the functional half of the workload: it is
    /// a pure function of `(app, graph, prop, tb_size)` and never
    /// depends on coherence, consistency, or any timing parameter —
    /// the invariant `ggs-core`'s `TraceCache` relies on to share one
    /// stream across every configuration cell of a direction.
    ///
    /// # Panics
    ///
    /// Panics if `prop` is not supported by the application (see
    /// [`AppKind::supported_propagations`]).
    pub fn produce(&self, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
        match self.app {
            AppKind::Pr => crate::pr::generate(self.graph, prop, tb_size, run),
            AppKind::Sssp => crate::sssp::generate(self.graph, prop, tb_size, run),
            AppKind::Mis => crate::mis::generate(self.graph, prop, tb_size, run),
            AppKind::Clr => crate::clr::generate(self.graph, prop, tb_size, run),
            AppKind::Bc => crate::bc::generate(self.graph, prop, tb_size, run),
            AppKind::Cc => crate::cc::generate(self.graph, prop, tb_size, run),
            AppKind::Bfs => crate::bfs::generate(self.graph, prop, tb_size, run),
        }
    }

    /// Materializes the whole kernel stream in emission order, each
    /// kernel behind an [`Arc`](std::sync::Arc) so a cache and several
    /// timing consumers can share it without copies.
    ///
    /// # Panics
    ///
    /// Panics if `prop` is not supported by the application (see
    /// [`AppKind::supported_propagations`]).
    pub fn stream(&self, prop: Propagation, tb_size: u32) -> Vec<std::sync::Arc<KernelTrace>> {
        let mut kernels = Vec::new();
        self.produce(prop, tb_size, &mut |k| kernels.push(std::sync::Arc::new(k)));
        kernels
    }

    /// The realized per-kernel direction schedule of this workload
    /// under `prop`: `None` for the static propagations (every kernel
    /// runs `prop` itself), `Some(schedule)` for
    /// [`Propagation::Hybrid`], where element *i* is the direction
    /// kernel *i* of [`Workload::produce`]'s stream actually ran.
    /// Like the stream, the schedule is a pure function of
    /// `(app, graph)`.
    ///
    /// # Panics
    ///
    /// Panics if `prop` is hybrid and the application does not support
    /// it (see [`AppKind::supported_propagations`]).
    pub fn direction_schedule(&self, prop: Propagation) -> Option<Vec<Propagation>> {
        if prop != Propagation::Hybrid {
            return None;
        }
        Some(match self.app {
            AppKind::Bfs => crate::bfs::hybrid_schedule(self.graph),
            AppKind::Sssp => crate::sssp::hybrid_schedule(self.graph),
            other => panic!("{other} does not support hybrid propagation"),
        })
    }

    /// Fingerprint of the direction policy as *realized* on this
    /// workload's graph: `0` for the static propagations (the
    /// direction is fully named by the propagation itself) and an
    /// FNV-1a hash of the density threshold plus the per-kernel
    /// direction letters for [`Propagation::Hybrid`]. Cache keys must
    /// incorporate this so a hybrid stream never collides with a
    /// static push or pull stream — nor with a hybrid stream produced
    /// under a different threshold or realized schedule.
    ///
    /// # Panics
    ///
    /// Panics if `prop` is hybrid and the application does not support
    /// it (see [`AppKind::supported_propagations`]).
    pub fn policy_fingerprint(&self, prop: Propagation) -> u64 {
        let Some(schedule) = self.direction_schedule(prop) else {
            return 0;
        };
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for byte in Propagation::HYBRID_DENSITY_THRESHOLD
            .to_bits()
            .to_le_bytes()
        {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
        for dir in schedule {
            h = (h ^ dir.letter() as u64).wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    #[test]
    fn mnemonics_roundtrip() {
        for app in AppKind::ALL.into_iter().chain(AppKind::EXTENDED) {
            let parsed: AppKind = app.mnemonic().parse().unwrap();
            assert_eq!(parsed, app);
        }
        assert!("XYZ".parse::<AppKind>().is_err());
    }

    #[test]
    fn table3_profiles() {
        use ggs_model::taxonomy::Traversal::*;
        assert_eq!(AppKind::Pr.algo_profile().traversal, Static);
        assert_eq!(AppKind::Cc.algo_profile().traversal, Dynamic);
        assert!(AppKind::Sssp.algo_profile().favors_source());
        assert!(AppKind::Bc.algo_profile().favors_source());
        assert!(!AppKind::Mis.algo_profile().favors_source());
        assert!(!AppKind::Clr.algo_profile().favors_source());
    }

    #[test]
    fn supported_propagations() {
        assert_eq!(AppKind::Pr.supported_propagations().len(), 2);
        assert_eq!(
            AppKind::Cc.supported_propagations(),
            &[Propagation::PushPull]
        );
    }

    #[test]
    fn policy_fingerprint_is_zero_only_for_static_props() {
        let g = GraphBuilder::new(64)
            .edges((0..63).map(|i| (i, i + 1)))
            .edges((1..63).map(|v| (0, v)))
            .symmetric(true)
            .build()
            .with_hashed_weights(4);
        for app in [AppKind::Bfs, AppKind::Sssp] {
            let w = Workload::new(app, &g);
            assert_eq!(w.policy_fingerprint(Propagation::Push), 0);
            assert_eq!(w.policy_fingerprint(Propagation::Pull), 0);
            assert_eq!(w.direction_schedule(Propagation::Push), None);
            let fp = w.policy_fingerprint(Propagation::Hybrid);
            assert_ne!(fp, 0, "{app} hybrid fingerprint");
            let schedule = w.direction_schedule(Propagation::Hybrid).unwrap();
            assert!(!schedule.is_empty());
            assert!(schedule
                .iter()
                .all(|d| matches!(d, Propagation::Push | Propagation::Pull)));
        }
    }

    #[test]
    #[should_panic(expected = "does not support hybrid")]
    fn direction_schedule_rejects_non_frontier_apps() {
        let g = GraphBuilder::new(8)
            .edges((0..7).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let _ = Workload::new(AppKind::Pr, &g).direction_schedule(Propagation::Hybrid);
    }

    #[test]
    fn only_frontier_apps_support_hybrid() {
        for app in AppKind::ALL.into_iter().chain(AppKind::EXTENDED) {
            let hybrid = app.supported_propagations().contains(&Propagation::Hybrid);
            assert_eq!(
                hybrid,
                matches!(app, AppKind::Bfs | AppKind::Sssp),
                "{app} hybrid support"
            );
        }
    }

    #[test]
    fn only_sssp_needs_weights() {
        for app in AppKind::ALL {
            assert_eq!(app.needs_weights(), app == AppKind::Sssp);
        }
    }

    #[test]
    fn every_static_app_generates_both_variants() {
        let g = GraphBuilder::new(32)
            .edges((0..31).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
            .with_hashed_weights(4);
        for app in AppKind::ALL.into_iter().chain(AppKind::EXTENDED) {
            for &prop in app.supported_propagations() {
                let mut kernels = 0;
                Workload::new(app, &g).generate(prop, 256, &mut |k| {
                    kernels += 1;
                    assert_eq!(k.num_threads(), 32);
                });
                assert!(kernels > 0, "{app}/{prop} emitted no kernels");
            }
        }
    }
}
