//! PageRank (PR) — topology-driven, static traversal, symmetric
//! control, source information (Table III).
//!
//! Every vertex is active every iteration (no predicates). The rank
//! contribution `rank[s] / deg[s]` is a *source* property: the push
//! variant hoists its loads and the division into the outer loop (once
//! per source), while the pull variant must re-load `rank[s]` and
//! `deg[s]` and divide for every in-edge.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Damping factor used by the reference implementation.
pub const DAMPING: f64 = 0.85;

/// Number of PR iterations simulated per run.
///
/// The paper measures whole-app GPU time; PR's per-iteration behaviour
/// is stationary, so a small fixed count preserves the configuration
/// ranking at a fraction of the simulation cost (see EXPERIMENTS.md).
pub const ITERATIONS: u32 = 3;

/// Cost of the floating-point divide + multiply-accumulate in cycles.
const DIV_CYCLES: u16 = 6;

/// Host-reference PageRank: returns the rank vector after `iterations`
/// synchronous iterations with damping [`DAMPING`].
///
/// # Example
///
/// ```
/// use ggs_apps::pr;
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edges([(0, 1), (1, 2), (2, 0)])
///     .symmetric(true)
///     .build();
/// let ranks = pr::reference(&g, 20);
/// // The symmetric triangle is regular: ranks converge to uniform.
/// assert!((ranks[0] - ranks[2]).abs() < 1e-9);
/// ```
pub fn reference(graph: &Csr, iterations: u32) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        // Dangling (degree-0) vertices redistribute their mass
        // uniformly, keeping the ranks a probability distribution.
        let dangling: f64 = (0..graph.num_vertices())
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| rank[v as usize])
            .sum();
        next.fill(base + DAMPING * dangling / n as f64);
        for s in 0..graph.num_vertices() {
            let deg = graph.out_degree(s);
            if deg == 0 {
                continue;
            }
            let contrib = DAMPING * rank[s as usize] / deg as f64;
            for &t in graph.neighbors(s) {
                next[t as usize] += contrib;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Generates the kernel sequence of a PR run ([`ITERATIONS`] kernels),
/// handing each finished trace to `run` by value. The stream is a pure
/// function of `(graph, prop, tb_size)` — coherence and consistency
/// never appear here — so consumers may materialize and reuse it
/// across configuration cells.
///
/// # Panics
///
/// Panics if `prop` is not [`Propagation::Push`] or
/// [`Propagation::Pull`] (PR has static
/// traversal).
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert!(
        matches!(prop, Propagation::Push | Propagation::Pull),
        "PageRank supports no dynamic direction policy: use Push or Pull"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let rank = [
        space.array("rank_a", n as u64),
        space.array("rank_b", n as u64),
    ];

    for iter in 0..ITERATIONS {
        let cur = rank[(iter % 2) as usize];
        let nxt = rank[((iter + 1) % 2) as usize];
        let kernel = match prop {
            Propagation::Push => vertex_kernel(n, tb_size, |s, ops| {
                // Hoisted source property: rank[s], degree, one divide.
                ops.push(MicroOp::load(cur.addr(s as u64)));
                arrays.load_degree(s, ops);
                ops.push(MicroOp::compute(DIV_CYCLES));
                for e in graph.edge_range(s) {
                    arrays.load_edge_target(e as u64, ops);
                    let t = graph.col_idx()[e as usize];
                    ops.push(MicroOp::atomic(nxt.addr(t as u64)));
                }
            }),
            Propagation::Pull => vertex_kernel(n, tb_size, |t, ops| {
                arrays.load_degree(t, ops);
                for e in graph.edge_range(t) {
                    arrays.load_edge_target(e as u64, ops);
                    let s = graph.col_idx()[e as usize];
                    // Per-edge source property loads + divide: the cost
                    // of not hoisting.
                    ops.push(MicroOp::load(cur.addr(s as u64)));
                    ops.push(MicroOp::load(arrays.row_ptr.addr(s as u64)));
                    ops.push(MicroOp::compute(DIV_CYCLES));
                }
                ops.push(MicroOp::store(nxt.addr(t as u64)));
            }),
            _ => unreachable!("direction filtered by supported_propagations"),
        };
        run(kernel);
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let n = graph.num_vertices() as u64;
    let _ = space.array("rank_a", n);
    let _ = space.array("rank_b", n);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn chain(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn reference_ranks_sum_to_one() {
        let g = chain(50);
        let ranks = reference(&g, 30);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn reference_star_center_ranks_highest() {
        let g = GraphBuilder::new(10)
            .edges((1..10).map(|i| (0, i)))
            .symmetric(true)
            .build();
        let ranks = reference(&g, 30);
        assert!(ranks[0] > ranks[1] * 3.0);
    }

    #[test]
    fn reference_empty_graph() {
        assert!(reference(&Csr::from_edges(0, &[]), 5).is_empty());
    }

    #[test]
    fn push_emits_one_atomic_per_edge() {
        let g = chain(20);
        let mut atomics = 0u64;
        let mut kernels = 0;
        generate(&g, Propagation::Push, 256, &mut |k| {
            kernels += 1;
            for t in 0..k.num_threads() {
                atomics += k
                    .thread(t)
                    .iter()
                    .filter(|o| matches!(o, MicroOp::Atomic { .. }))
                    .count() as u64;
            }
        });
        assert_eq!(kernels, ITERATIONS as usize);
        assert_eq!(atomics, g.num_edges() * ITERATIONS as u64);
    }

    #[test]
    fn pull_emits_no_atomics_and_one_store_per_vertex() {
        let g = chain(20);
        generate(&g, Propagation::Pull, 256, &mut |k| {
            let mut stores = 0;
            for t in 0..k.num_threads() {
                assert!(k
                    .thread(t)
                    .iter()
                    .all(|o| !matches!(o, MicroOp::Atomic { .. })));
                stores += k
                    .thread(t)
                    .iter()
                    .filter(|o| matches!(o, MicroOp::Store { .. }))
                    .count();
            }
            assert_eq!(stores, 20);
        });
    }

    #[test]
    fn pull_loads_source_properties_per_edge() {
        let g = chain(20);
        let mut first = true;
        generate(&g, Propagation::Pull, 256, &mut |k| {
            if !first {
                return;
            }
            first = false;
            // Interior vertex: degree 2 -> 1 degree load + per-edge
            // (col_idx + rank + deg + compute) + 1 store = 1 + 2*4 + 1.
            assert_eq!(k.thread(1).len(), 10);
        });
    }

    #[test]
    #[should_panic(expected = "no dynamic direction policy")]
    fn rejects_pushpull() {
        let g = chain(4);
        generate(&g, Propagation::PushPull, 256, &mut |_| {});
    }

    #[test]
    #[should_panic(expected = "no dynamic direction policy")]
    fn rejects_hybrid() {
        // PR exposes no active set, so the frontier-adaptive policy is
        // rejected up front rather than degenerating to always-pull.
        let g = chain(4);
        generate(&g, Propagation::Hybrid, 256, &mut |_| {});
    }
}
