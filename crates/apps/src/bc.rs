//! Betweenness Centrality (BC) — static traversal, source control,
//! symmetric information (Table III).
//!
//! Brandes' algorithm from a single root: a level-synchronous forward
//! BFS accumulating shortest-path counts (`sigma`), then a backward
//! sweep accumulating dependencies (`delta`). The forward phase has
//! frontier control at the *source* (push skips off-frontier sources
//! after one level load); information is symmetric (both variants load
//! `sigma` per edge). The backward sweep is a local accumulation and is
//! identical for both variants.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Root vertex of every BC run.
pub const ROOT: u32 = 0;

/// Maximum BFS levels simulated forward and backward (the reference
/// always runs the full traversal).
pub const MAX_LEVELS: u32 = 8;

/// Level value for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Forward BFS from [`ROOT`]: per-vertex `(level, sigma)` where `sigma`
/// counts shortest paths.
fn forward(graph: &Csr) -> (Vec<u32>, Vec<u64>) {
    let n = graph.num_vertices() as usize;
    let mut level = vec![UNREACHED; n];
    let mut sigma = vec![0u64; n];
    if n == 0 {
        return (level, sigma);
    }
    level[ROOT as usize] = 0;
    sigma[ROOT as usize] = 1;
    let mut frontier = vec![ROOT];
    let mut l = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &s in &frontier {
            for &t in graph.neighbors(s) {
                if level[t as usize] == UNREACHED {
                    level[t as usize] = l + 1;
                    next.push(t);
                }
                if level[t as usize] == l + 1 {
                    sigma[t as usize] += sigma[s as usize];
                }
            }
        }
        frontier = next;
        l += 1;
    }
    (level, sigma)
}

/// Host-reference BC scores (unnormalized, single root).
///
/// # Example
///
/// ```
/// use ggs_apps::bc;
/// use ggs_graph::GraphBuilder;
///
/// // Path 0-1-2: all shortest paths from 0 pass through vertex 1.
/// let g = GraphBuilder::new(3)
///     .edges([(0, 1), (1, 2)])
///     .symmetric(true)
///     .build();
/// let scores = bc::reference(&g);
/// assert!(scores[1] > scores[2]);
/// ```
pub fn reference(graph: &Csr) -> Vec<f64> {
    let n = graph.num_vertices() as usize;
    let (level, sigma) = forward(graph);
    let mut delta = vec![0.0f64; n];
    let max_level = level
        .iter()
        .filter(|&&l| l != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    for l in (0..max_level).rev() {
        for v in 0..graph.num_vertices() {
            if level[v as usize] != l {
                continue;
            }
            let mut acc = 0.0;
            for &t in graph.neighbors(v) {
                if level[t as usize] == l + 1 && sigma[t as usize] > 0 {
                    acc += (sigma[v as usize] as f64 / sigma[t as usize] as f64)
                        * (1.0 + delta[t as usize]);
                }
            }
            delta[v as usize] += acc;
        }
    }
    delta
}

/// Generates the kernel sequence of a BC run (one kernel per forward
/// level, then one per backward level), handing each finished trace to
/// `run` by value. The stream depends only on
/// `(graph, prop, tb_size)`, so it is safe to materialize once and
/// replay across configuration cells.
///
/// # Panics
///
/// Panics if `prop` is not [`Propagation::Push`] or
/// [`Propagation::Pull`] (no dynamic direction policy).
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert!(
        matches!(prop, Propagation::Push | Propagation::Pull),
        "BC supports no dynamic direction policy: use Push or Pull"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let level_arr = space.array("level", n as u64);
    let sigma_arr = space.array("sigma", n as u64);
    let delta_arr = space.array("delta", n as u64);

    let (level, _sigma) = forward(graph);
    let max_level = level
        .iter()
        .filter(|&&l| l != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    let levels = max_level.min(MAX_LEVELS);

    // Forward phase: one kernel per level.
    for l in 0..levels {
        let kernel = match prop {
            Propagation::Push => vertex_kernel(n, tb_size, |s, ops| {
                // Source control: one level load elides off-frontier work.
                ops.push(MicroOp::load(level_arr.addr(s as u64)));
                if level[s as usize] != l {
                    return;
                }
                ops.push(MicroOp::load(sigma_arr.addr(s as u64)));
                for e in graph.edge_range(s) {
                    arrays.load_edge_target(e as u64, ops);
                    let t = graph.col_idx()[e as usize];
                    ops.push(MicroOp::load(level_arr.addr(t as u64)));
                    if level[t as usize] == l + 1 {
                        ops.push(MicroOp::atomic(sigma_arr.addr(t as u64)));
                        // Benign first-writer-wins race on the level
                        // word: must be a *marked* (relaxed) atomic to
                        // stay DRF, exactly like BFS push.
                        ops.push(MicroOp::atomic(level_arr.addr(t as u64)));
                    }
                }
            }),
            Propagation::Pull => vertex_kernel(n, tb_size, |t, ops| {
                ops.push(MicroOp::load(level_arr.addr(t as u64)));
                // Unvisited targets scan their in-neighbors.
                if level[t as usize] < l + 1 {
                    return;
                }
                let mut found = false;
                for e in graph.edge_range(t) {
                    arrays.load_edge_target(e as u64, ops);
                    let s = graph.col_idx()[e as usize];
                    ops.push(MicroOp::load(level_arr.addr(s as u64)));
                    if level[s as usize] == l {
                        ops.push(MicroOp::load(sigma_arr.addr(s as u64)));
                        ops.push(MicroOp::compute(1));
                        found = true;
                    }
                }
                if found && level[t as usize] == l + 1 {
                    // sigma[t] is safe to write in place: this kernel
                    // only reads sigma of level-l vertices, and t is at
                    // level l+1 — disjoint addresses.
                    ops.push(MicroOp::store(sigma_arr.addr(t as u64)));
                }
            }),
            _ => unreachable!("direction filtered by supported_propagations"),
        };
        run(kernel);

        // Pull writes the level word in a separate settle kernel: the
        // gather kernel above reads `level` remotely, so updating it in
        // place would be an (unmarked) read/write race. The settle pass
        // is a dense local update — each thread touches only its own
        // word — which keeps pull atomic-free and race-free (Table I).
        if prop == Propagation::Pull {
            let settle = vertex_kernel(n, tb_size, |v, ops| {
                ops.push(MicroOp::load(level_arr.addr(v as u64)));
                if level[v as usize] == l + 1 {
                    ops.push(MicroOp::store(level_arr.addr(v as u64)));
                }
            });
            run(settle);
        }
    }

    // Backward phase: identical local accumulation for both variants.
    for l in (0..levels).rev() {
        let kernel = vertex_kernel(n, tb_size, |v, ops| {
            ops.push(MicroOp::load(level_arr.addr(v as u64)));
            if level[v as usize] != l {
                return;
            }
            ops.push(MicroOp::load(sigma_arr.addr(v as u64)));
            for e in graph.edge_range(v) {
                arrays.load_edge_target(e as u64, ops);
                let t = graph.col_idx()[e as usize];
                ops.push(MicroOp::load(level_arr.addr(t as u64)));
                if level[t as usize] == l + 1 {
                    ops.push(MicroOp::load(sigma_arr.addr(t as u64)));
                    ops.push(MicroOp::load(delta_arr.addr(t as u64)));
                    ops.push(MicroOp::compute(3));
                }
            }
            ops.push(MicroOp::store(delta_arr.addr(v as u64)));
        });
        run(kernel);
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let n = graph.num_vertices() as u64;
    let _ = space.array("level", n);
    let _ = space.array("sigma", n);
    let _ = space.array("delta", n);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn path(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
    }

    #[test]
    fn reference_path_interior_dominates() {
        let scores = reference(&path(5));
        // From root 0, dependency decreases along the path.
        assert!(scores[1] > scores[2]);
        assert!(scores[2] > scores[3]);
        assert_eq!(scores[4], 0.0);
    }

    #[test]
    fn reference_star_leaves_are_zero() {
        let g = GraphBuilder::new(10)
            .edges((1..10).map(|i| (0, i)))
            .symmetric(true)
            .build();
        let scores = reference(&g);
        for score in &scores[1..10] {
            assert_eq!(*score, 0.0);
        }
    }

    #[test]
    fn reference_counts_multiple_shortest_paths() {
        // Diamond: 0-1-3, 0-2-3. Each middle vertex carries half.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .symmetric(true)
            .build();
        let scores = reference(&g);
        assert!((scores[1] - 0.5).abs() < 1e-12);
        assert!((scores[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn forward_levels_and_sigma() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .symmetric(true)
            .build();
        let (level, sigma) = forward(&g);
        assert_eq!(level, vec![0, 1, 1, 2]);
        assert_eq!(sigma, vec![1, 1, 1, 2]);
    }

    #[test]
    fn kernel_count_is_levels_forward_plus_backward() {
        let g = path(6); // levels 0..5 -> max_level 5, capped at 5
        let mut kernels = 0;
        generate(&g, Propagation::Push, 256, &mut |_| kernels += 1);
        assert_eq!(kernels, 10);
    }

    #[test]
    fn push_elides_off_frontier_sources() {
        let g = path(40);
        let mut seen = 0;
        generate(&g, Propagation::Push, 256, &mut |k| {
            if seen == 0 {
                // Level-0 kernel: only the root works.
                assert!(k.thread(0).len() > 2);
                assert_eq!(k.thread(30).len(), 1);
            }
            seen += 1;
        });
    }

    #[test]
    fn pull_scans_in_neighbors_of_unvisited() {
        let g = path(40);
        let mut seen = 0;
        generate(&g, Propagation::Pull, 256, &mut |k| {
            if seen == 0 {
                // Vertex 1 is at level 1: scans both neighbors.
                assert!(k.thread(1).len() >= 5);
                // Already-settled root does a single load.
                assert_eq!(k.thread(0).len(), 1);
            }
            seen += 1;
        });
    }
}
