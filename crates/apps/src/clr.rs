//! Graph Coloring (CLR) — static traversal, symmetric control, target
//! information (Table III).
//!
//! Pannotia-style max/min coloring: each round, every uncolored vertex
//! compares a random value against its uncolored neighbors; the local
//! maximum takes color `2r`, the local minimum `2r + 1`.
//!
//! Information lives at the *target*: the pull variant gathers each
//! neighbor's packed color+value word (one load per edge), computes the
//! neighborhood max/min locally and writes its own color in one kernel,
//! while the push variant must scatter values into a per-target packed
//! max/min aggregate (one atomic per edge) and run a second per-vertex
//! kernel to decide colors and reset the aggregates.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Maximum rounds simulated per run (the reference runs to
/// completion).
pub const MAX_ROUNDS: u32 = 8;

/// Sentinel for an uncolored vertex.
pub const UNCOLORED: u32 = u32::MAX;

fn value(v: u32) -> u64 {
    let mut x = (v as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x5ee5_ca1e;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    ((x ^ (x >> 33)) << 32) | v as u64
}

/// Host-reference coloring: returns a proper vertex coloring (adjacent
/// vertices receive different colors).
///
/// # Example
///
/// ```
/// use ggs_apps::clr;
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3)
///     .edges([(0, 1), (1, 2), (2, 0)])
///     .symmetric(true)
///     .build();
/// let colors = clr::reference(&g);
/// assert_ne!(colors[0], colors[1]);
/// assert_ne!(colors[1], colors[2]);
/// ```
pub fn reference(graph: &Csr) -> Vec<u32> {
    snapshots(graph).pop().unwrap_or_default()
}

/// Color snapshots after each round.
fn snapshots(graph: &Csr) -> Vec<Vec<u32>> {
    let n = graph.num_vertices();
    let mut color = vec![UNCOLORED; n as usize];
    let mut snaps = Vec::new();
    let mut round = 0u32;
    while color.contains(&UNCOLORED) {
        let prev = color.clone();
        for v in 0..n {
            if prev[v as usize] != UNCOLORED {
                continue;
            }
            let undecided: Vec<u32> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&t| prev[t as usize] == UNCOLORED && t != v)
                .collect();
            let vv = value(v);
            let is_max = undecided.iter().all(|&t| value(t) < vv);
            let is_min = undecided.iter().all(|&t| value(t) > vv);
            if is_max {
                color[v as usize] = 2 * round;
            } else if is_min {
                color[v as usize] = 2 * round + 1;
            }
        }
        snaps.push(color.clone());
        round += 1;
        debug_assert!(round < 10_000, "coloring failed to converge");
    }
    if snaps.is_empty() {
        snaps.push(color);
    }
    snaps
}

/// Generates the kernel sequence of a CLR run (pull: one kernel per
/// round; push: two kernels per round), handing each finished trace to
/// `run` by value. The stream depends only on
/// `(graph, prop, tb_size)`, so it is safe to materialize once and
/// replay across configuration cells.
///
/// # Panics
///
/// Panics if `prop` is not [`Propagation::Push`] or
/// [`Propagation::Pull`] (no dynamic direction policy).
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert!(
        matches!(prop, Propagation::Push | Propagation::Pull),
        "graph coloring supports no dynamic direction policy: use Push or Pull"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let color = space.array("color", n as u64);
    let val = space.array("val", n as u64);
    // Packed max/min aggregate: one 2x32-bit word per vertex.
    let agg = space.array("agg", n as u64);

    let snaps = snapshots(graph);
    let mut before = vec![UNCOLORED; n as usize];

    for after in snaps.iter().take(MAX_ROUNDS as usize) {
        match prop {
            Propagation::Push => {
                // Kernel 1: scatter values to neighbor aggregates.
                let scatter = vertex_kernel(n, tb_size, |s, ops| {
                    ops.push(MicroOp::load(color.addr(s as u64)));
                    if before[s as usize] != UNCOLORED {
                        return;
                    }
                    ops.push(MicroOp::load(val.addr(s as u64)));
                    for e in graph.edge_range(s) {
                        arrays.load_edge_target(e as u64, ops);
                        let t = graph.col_idx()[e as usize];
                        // Fused max/min aggregate (packed 2x32-bit word):
                        // one fire-and-forget atomic per edge; colored
                        // targets ignore their aggregate, so no blocking
                        // predicate load sits in the inner loop.
                        let _ = t;
                        ops.push(MicroOp::atomic(
                            agg.addr(graph.col_idx()[e as usize] as u64),
                        ));
                    }
                });
                run(scatter);
                // Kernel 2: decide colors from the aggregates.
                let decide = vertex_kernel(n, tb_size, |v, ops| {
                    ops.push(MicroOp::load(color.addr(v as u64)));
                    if before[v as usize] != UNCOLORED {
                        return;
                    }
                    ops.push(MicroOp::load(agg.addr(v as u64)));
                    ops.push(MicroOp::load(val.addr(v as u64)));
                    ops.push(MicroOp::compute(2));
                    if after[v as usize] != UNCOLORED {
                        ops.push(MicroOp::store(color.addr(v as u64)));
                    }
                    // Reset the aggregate for the next round.
                    ops.push(MicroOp::store(agg.addr(v as u64)));
                });
                run(decide);
            }
            Propagation::Pull => {
                // Single kernel: local max/min scan, local color write.
                let kernel = vertex_kernel(n, tb_size, |t, ops| {
                    ops.push(MicroOp::load(color.addr(t as u64)));
                    if before[t as usize] != UNCOLORED {
                        return;
                    }
                    ops.push(MicroOp::load(val.addr(t as u64)));
                    for e in graph.edge_range(t) {
                        arrays.load_edge_target(e as u64, ops);
                        let s = graph.col_idx()[e as usize];
                        // Packed color+value word: one blocking sparse
                        // load per edge (the max/min comparison
                        // dual-issues under the load).
                        ops.push(MicroOp::load(val.addr(s as u64)));
                        let _ = s;
                    }
                    if after[t as usize] != UNCOLORED {
                        ops.push(MicroOp::store(color.addr(t as u64)));
                    }
                });
                run(kernel);
            }
            _ => unreachable!("direction filtered by supported_propagations"),
        }
        before.clone_from(after);
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let n = graph.num_vertices() as u64;
    let _ = space.array("color", n);
    let _ = space.array("val", n);
    let _ = space.array("agg", n);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn ring(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .symmetric(true)
            .build()
    }

    fn assert_proper(graph: &Csr, colors: &[u32]) {
        for (s, t) in graph.edges() {
            assert_ne!(colors[s as usize], colors[t as usize], "edge {s}-{t}");
            assert_ne!(colors[s as usize], UNCOLORED);
        }
    }

    #[test]
    fn reference_colors_ring_properly() {
        let g = ring(101);
        assert_proper(&g, &reference(&g));
    }

    #[test]
    fn reference_colors_clique_properly() {
        let mut edges = Vec::new();
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = Csr::from_edges(8, &edges);
        let colors = reference(&g);
        assert_proper(&g, &colors);
        // A clique needs all-distinct colors.
        let mut sorted = colors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn push_issues_one_atomic_per_uncolored_edge_round1() {
        let g = ring(64);
        let mut first = true;
        generate(&g, Propagation::Push, 256, &mut |k| {
            if !first {
                return;
            }
            first = false;
            let atomics: usize = (0..k.num_threads())
                .map(|t| {
                    k.thread(t)
                        .iter()
                        .filter(|o| matches!(o, MicroOp::Atomic { .. }))
                        .count()
                })
                .sum();
            assert_eq!(atomics as u64, g.num_edges());
        });
    }

    #[test]
    fn pull_is_single_kernel_per_round_push_is_two() {
        let g = ring(64);
        let count = |prop| {
            let mut kernels = 0;
            generate(&g, prop, 256, &mut |_| kernels += 1);
            kernels
        };
        let pull = count(Propagation::Pull);
        let push = count(Propagation::Push);
        assert_eq!(push, 2 * pull);
    }

    #[test]
    fn empty_graph_emits_nothing() {
        let g = Csr::from_edges(0, &[]);
        let mut kernels = 0;
        generate(&g, Propagation::Pull, 256, &mut |_| kernels += 1);
        assert_eq!(kernels, 1); // single empty snapshot round
    }
}
