//! Shared trace-generation machinery for the vertex-centric kernels.

use ggs_graph::Csr;
use ggs_sim::layout::{AddressSpace, ArrayHandle};
use ggs_sim::trace::{KernelTrace, MicroOp};

/// Address handles for the CSR arrays every kernel walks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GraphArrays {
    pub row_ptr: ArrayHandle,
    pub col_idx: ArrayHandle,
    pub weights: Option<ArrayHandle>,
}

impl GraphArrays {
    /// Allocates the CSR arrays in `space` for `graph`.
    pub fn new(space: &mut AddressSpace, graph: &Csr) -> Self {
        Self {
            row_ptr: space.array("row_ptr", graph.num_vertices() as u64 + 1),
            col_idx: space.array("col_idx", graph.num_edges()),
            weights: graph
                .is_weighted()
                .then(|| space.array("weights", graph.num_edges())),
        }
    }

    /// The standard producer workspace: a fresh [`AddressSpace`] with
    /// the CSR arrays laid out first, exactly as every `memory_map`
    /// assumes. Each functional producer builds one per `generate`
    /// call; the layout is a pure function of the graph, which is what
    /// makes the emitted trace streams cacheable across configurations
    /// (see `ggs-core`'s `TraceCache`).
    pub fn workspace(graph: &Csr) -> (AddressSpace, GraphArrays) {
        let mut space = AddressSpace::new(64);
        let arrays = GraphArrays::new(&mut space, graph);
        (space, arrays)
    }

    /// Emits the degree lookup for vertex `v` (`row_ptr[v]` and
    /// `row_ptr[v+1]` share a cache line 15 times out of 16; one load
    /// covers the pair).
    pub fn load_degree(&self, v: u32, ops: &mut Vec<MicroOp>) {
        ops.push(MicroOp::load(self.row_ptr.addr(v as u64)));
    }

    /// Emits the `col_idx[e]` load for edge slot `e`.
    pub fn load_edge_target(&self, e: u64, ops: &mut Vec<MicroOp>) {
        ops.push(MicroOp::load(self.col_idx.addr(e)));
    }

    /// Emits the `weights[e]` load for edge slot `e` (no-op when the
    /// graph is unweighted).
    pub fn load_edge_weight(&self, e: u64, ops: &mut Vec<MicroOp>) {
        if let Some(w) = self.weights {
            ops.push(MicroOp::load(w.addr(e)));
        }
    }
}

/// Builds a vertex-centric kernel: one thread per vertex, traces
/// produced by `emit(vertex, ops)`.
///
/// Each thread's ops are appended to one flat arena (the emit closures
/// only push), so building a kernel costs two allocations total instead
/// of one per vertex.
pub(crate) fn vertex_kernel<F>(num_vertices: u32, tb_size: u32, mut emit: F) -> KernelTrace
where
    F: FnMut(u32, &mut Vec<MicroOp>),
{
    let mut ops = Vec::new();
    let mut offsets = Vec::with_capacity(num_vertices as usize + 1);
    offsets.push(0);
    for v in 0..num_vertices {
        emit(v, &mut ops);
        offsets.push(u32::try_from(ops.len()).expect("trace exceeds u32 op capacity"));
    }
    KernelTrace::from_flat(ops, offsets, tb_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    #[test]
    fn graph_arrays_do_not_alias() {
        let g = GraphBuilder::new(10)
            .edges((0..9).map(|i| (i, i + 1)))
            .symmetric(true)
            .build()
            .with_hashed_weights(8);
        let mut space = AddressSpace::new(64);
        let arrays = GraphArrays::new(&mut space, &g);
        let rp_end = arrays.row_ptr.addr(10);
        assert!(arrays.col_idx.addr(0) > rp_end);
        assert!(arrays.weights.is_some());
    }

    #[test]
    fn vertex_kernel_one_thread_per_vertex() {
        let k = vertex_kernel(10, 4, |v, ops| {
            if v % 2 == 0 {
                ops.push(MicroOp::compute(1));
            }
        });
        assert_eq!(k.num_threads(), 10);
        assert_eq!(k.thread(0).len(), 1);
        assert_eq!(k.thread(1).len(), 0);
        assert_eq!(k.tb_size(), 4);
    }
}
