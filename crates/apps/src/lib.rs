//! The six graph applications of *Specializing Coherence, Consistency,
//! and Push/Pull for GPU Graph Analytics* (ISPASS 2020), §V-B.
//!
//! Five applications are re-implementations of Pannotia benchmarks —
//! PageRank ([`pr`]), Single-Source Shortest Path ([`sssp`]), Maximal
//! Independent Set ([`mis`]), Graph Coloring ([`clr`]), and Betweenness
//! Centrality ([`bc`]) — each in a *push* (source-centric, atomic
//! updates) and a *pull* (target-centric, local updates) variant. The
//! sixth, Connected Components ([`cc`]), follows the ECL-CC algorithm of
//! Jaiganesh & Burtscher and represents *dynamic* traversal (racy
//! push+pull through data-dependent parent pointers). Breadth-First
//! Search ([`bfs`]) is provided as an extension beyond the paper's
//! matrix (§VIII outlook).
//!
//! Every application provides:
//!
//! * a **host reference** implementation (plain Rust, used as the
//!   correctness oracle in tests and by downstream users who just want
//!   the answer);
//! * a **kernel-trace generator** that replays the algorithm and emits
//!   the per-thread micro-op streams ([`ggs_sim::trace`]) a GPU
//!   execution would produce — predicate loads, CSR walks, property
//!   accesses, atomics — for the chosen [`Propagation`] variant;
//! * its algorithmic-property row from the paper's Table III
//!   ([`AppKind::algo_profile`]).
//!
//! # Example
//!
//! ```
//! use ggs_apps::{AppKind, Workload};
//! use ggs_graph::GraphBuilder;
//! use ggs_model::Propagation;
//!
//! let graph = GraphBuilder::new(64)
//!     .edges((0..63).map(|i| (i, i + 1)))
//!     .symmetric(true)
//!     .build();
//!
//! // Count the kernels a push PageRank run launches.
//! let workload = Workload::new(AppKind::Pr, &graph);
//! let mut kernels = 0;
//! workload.generate(Propagation::Push, 256, &mut |_k| kernels += 1);
//! assert_eq!(kernels, ggs_apps::pr::ITERATIONS as usize);
//! ```
//!
//! [`Propagation`]: ggs_model::Propagation

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod clr;
mod common;
pub mod mis;
pub mod pr;
mod registry;
pub mod sssp;

pub use registry::{AppKind, ParseAppError, Workload};
