//! Connected Components (CC) — *dynamic* traversal (Table III), adapted
//! from the ECL-CC algorithm of Jaiganesh & Burtscher (HPDC'18).
//!
//! Union-find over a shared `parent` array: a hooking pass walks every
//! edge, chasing both endpoints' parent chains to their roots (racy,
//! data-dependent reads — the *transitive closure* traversal the paper
//! calls dynamic) and hooking the larger root under the smaller with a
//! compare-and-swap; shortcut passes then flatten the chains.
//!
//! All parent-chain accesses are synchronization accesses whose
//! *returned values drive control flow*, so they are emitted as
//! value-returning atomics — which is why relaxed consistency cannot
//! help CC (§IV-A4) and why DeNovo's L1 ownership of the converging
//! parent entries pays off (the paper's `DD1` recommendation).

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Number of shortcut (pointer-jumping) kernels simulated after the
/// hooking kernel.
pub const SHORTCUT_ROUNDS: u32 = 2;

/// Host-reference connected components: returns the component root id
/// of every vertex.
///
/// # Example
///
/// ```
/// use ggs_apps::cc;
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4).edge(0, 1).edge(2, 3).symmetric(true).build();
/// let labels = cc::reference(&g);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// assert_eq!(labels[2], labels[3]);
/// ```
pub fn reference(graph: &Csr) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n).collect();
    for v in 0..n {
        for &t in graph.neighbors(v) {
            union(&mut parent, v, t);
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

fn find(parent: &mut [u32], mut v: u32) -> u32 {
    while parent[v as usize] != v {
        let g = parent[parent[v as usize] as usize];
        parent[v as usize] = g;
        v = g;
    }
    v
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// Generates the kernel sequence of a CC run (init, hooking, and
/// [`SHORTCUT_ROUNDS`] shortcut kernels), handing each finished trace
/// to `run` by value. The stream depends only on
/// `(graph, prop, tb_size)`, so it is safe to materialize once and
/// replay across configuration cells.
///
/// CC is inherently push+pull; `prop` must be
/// [`Propagation::PushPull`].
///
/// # Panics
///
/// Panics if `prop` is not [`Propagation::PushPull`].
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert_eq!(
        prop,
        Propagation::PushPull,
        "connected components has dynamic traversal: use PushPull"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let parent = space.array("parent", n as u64);

    // Replayed union-find state mirrors what the trace touches.
    let mut pstate: Vec<u32> = (0..n).collect();

    // Init kernel: parent[v] = v (first smaller neighbor in ECL-CC; a
    // plain store either way).
    let init = vertex_kernel(n, tb_size, |v, ops| {
        ops.push(MicroOp::store(parent.addr(v as u64)));
    });
    run(init);

    // Hooking kernel: every vertex processes its out-edges to smaller
    // ids; each endpoint's chain is chased with value-returning atomics
    // (addresses are data-dependent), then hooked with a CAS.
    let emit_find = |pstate: &Vec<u32>, mut v: u32, ops: &mut Vec<MicroOp>| -> u32 {
        loop {
            ops.push(MicroOp::atomic_returning(parent.addr(v as u64)));
            let p = pstate[v as usize];
            if p == v {
                return v;
            }
            v = p;
        }
    };
    let hook = vertex_kernel(n, tb_size, |v, ops| {
        for e in graph.edge_range(v) {
            let t = graph.col_idx()[e as usize];
            if t >= v {
                continue; // each undirected edge hooked once
            }
            arrays.load_edge_target(e as u64, ops);
            let rv = emit_find(&pstate, v, ops);
            let rt = emit_find(&pstate, t, ops);
            if rv != rt {
                let (lo, hi) = if rv < rt { (rv, rt) } else { (rt, rv) };
                ops.push(MicroOp::atomic_returning(parent.addr(hi as u64)));
                pstate[hi as usize] = lo;
            }
        }
    });
    run(hook);

    // Shortcut kernels: flatten chains with pointer jumping.
    for _ in 0..SHORTCUT_ROUNDS {
        let mut next = pstate.clone();
        let shortcut = vertex_kernel(n, tb_size, |v, ops| {
            let mut cur = v;
            loop {
                ops.push(MicroOp::atomic_returning(parent.addr(cur as u64)));
                let p = pstate[cur as usize];
                if p == cur {
                    break;
                }
                cur = p;
            }
            ops.push(MicroOp::store(parent.addr(v as u64)));
            next[v as usize] = cur;
        });
        run(shortcut);
        pstate = next;
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let _ = space.array("parent", graph.num_vertices() as u64);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    #[test]
    fn reference_two_components() {
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (3, 4), (4, 5)])
            .symmetric(true)
            .build();
        let l = reference(&g);
        assert_eq!(l[0], l[2]);
        assert_eq!(l[3], l[5]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn reference_isolated_vertices_are_their_own_component() {
        let g = Csr::from_edges(3, &[]);
        assert_eq!(reference(&g), vec![0, 1, 2]);
    }

    #[test]
    fn reference_labels_are_component_minima() {
        let g = GraphBuilder::new(5)
            .edges([(4, 2), (2, 0)])
            .symmetric(true)
            .build();
        let l = reference(&g);
        assert_eq!(l[4], 0);
        assert_eq!(l[2], 0);
    }

    #[test]
    fn trace_uses_only_returning_atomics_for_parent_chains() {
        let g = GraphBuilder::new(16)
            .edges((0..15).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let mut kernels = 0;
        let mut returning = 0u64;
        let mut plain = 0u64;
        generate(&g, Propagation::PushPull, 256, &mut |k| {
            kernels += 1;
            for t in 0..k.num_threads() {
                for op in k.thread(t) {
                    match op {
                        MicroOp::Atomic {
                            returns_value: true,
                            ..
                        } => returning += 1,
                        MicroOp::Atomic {
                            returns_value: false,
                            ..
                        } => plain += 1,
                        _ => {}
                    }
                }
            }
        });
        assert_eq!(kernels, (2 + SHORTCUT_ROUNDS) as usize);
        assert!(returning > 0);
        assert_eq!(plain, 0, "every CC atomic returns a value");
    }

    #[test]
    #[should_panic(expected = "dynamic traversal")]
    fn rejects_static_variants() {
        let g = GraphBuilder::new(4).edge(0, 1).symmetric(true).build();
        generate(&g, Propagation::Push, 256, &mut |_| {});
    }

    #[test]
    fn shortcut_flattens_chains() {
        // A long path produces deep chains that shortcutting shortens:
        // the final kernel's traces must be shorter than the first
        // shortcut's.
        let g = GraphBuilder::new(200)
            .edges((0..199).map(|i| (i, i + 1)))
            .symmetric(true)
            .build();
        let mut lens = Vec::new();
        generate(&g, Propagation::PushPull, 256, &mut |k| {
            lens.push(k.total_ops());
        });
        let shortcut1 = lens[2];
        let shortcut2 = lens[3];
        assert!(shortcut2 <= shortcut1, "{lens:?}");
    }
}
