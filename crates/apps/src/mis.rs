//! Maximal Independent Set (MIS) — static traversal, symmetric control,
//! symmetric information (Table III).
//!
//! Luby-style: every undecided vertex compares a random priority with
//! its undecided neighbors; local maxima join the set and knock their
//! neighbors out. Control and information are symmetric (both variants
//! predicate on their own status and exchange the same priority data);
//! the variants differ in the direction of the priority exchange:
//!
//! * **push** — each undecided source scatters its priority into its
//!   neighbors' max-aggregates with fire-and-forget atomics (the
//!   paper's "dense local reads, sparse remote atomics"); a per-vertex
//!   decide kernel then compares the own priority to the aggregate and
//!   winners knock their neighbors out;
//! * **pull** — each undecided target gathers its neighbors' packed
//!   status+priority words with blocking sparse loads and updates only
//!   itself.

use ggs_graph::Csr;
use ggs_model::Propagation;
use ggs_sim::layout::AddressSpace;
use ggs_sim::trace::{KernelTrace, MicroOp};

use crate::common::{vertex_kernel, GraphArrays};

/// Maximum rounds simulated per run (the reference runs to
/// completion; random-priority MIS completes in O(log |V|) rounds).
pub const MAX_ROUNDS: u32 = 8;

/// Vertex status in the MIS computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not yet decided.
    Undecided,
    /// In the independent set.
    In,
    /// Excluded (a neighbor is in the set).
    Out,
}

fn priority(v: u32) -> u64 {
    // Deterministic pseudo-random priority; ties broken by id.
    let mut x = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) << 32) | v as u64
}

/// Host-reference MIS: returns the final status of every vertex.
///
/// The result is a valid maximal independent set: no two `In` vertices
/// are adjacent, and every `Out` vertex has an `In` neighbor.
///
/// # Example
///
/// ```
/// use ggs_apps::mis::{reference, Status};
/// use ggs_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(2).edge(0, 1).symmetric(true).build();
/// let s = reference(&g);
/// // Exactly one endpoint of a single edge joins the set.
/// assert_eq!(s.iter().filter(|&&x| x == Status::In).count(), 1);
/// ```
pub fn reference(graph: &Csr) -> Vec<Status> {
    rounds(graph).pop().unwrap_or_default()
}

/// Status snapshots *after* each round, starting from the first round's
/// result. The trace replay uses the snapshot *before* round `r` to
/// know which vertices still do work.
fn rounds(graph: &Csr) -> Vec<Vec<Status>> {
    let n = graph.num_vertices();
    let mut status = vec![Status::Undecided; n as usize];
    let mut snaps = Vec::new();
    loop {
        let mut winners = Vec::new();
        for v in 0..n {
            if status[v as usize] != Status::Undecided {
                continue;
            }
            let pv = priority(v);
            let wins = graph
                .neighbors(v)
                .iter()
                .all(|&t| status[t as usize] != Status::Undecided || priority(t) < pv);
            if wins {
                winners.push(v);
            }
        }
        if winners.is_empty() {
            // Isolated leftovers (no undecided vertices remain).
            break;
        }
        for &v in &winners {
            status[v as usize] = Status::In;
            for &t in graph.neighbors(v) {
                if status[t as usize] == Status::Undecided {
                    status[t as usize] = Status::Out;
                }
            }
        }
        snaps.push(status.clone());
        if !status.contains(&Status::Undecided) {
            break;
        }
    }
    if snaps.is_empty() {
        snaps.push(status);
    }
    snaps
}

/// Generates the kernel sequence of an MIS run (one kernel per round),
/// handing each finished trace to `run` by value. The stream depends
/// only on `(graph, prop, tb_size)`, so it is safe to materialize once
/// and replay across configuration cells.
///
/// # Panics
///
/// Panics if `prop` is not [`Propagation::Push`] or
/// [`Propagation::Pull`] (no dynamic direction policy).
pub fn generate(graph: &Csr, prop: Propagation, tb_size: u32, run: &mut dyn FnMut(KernelTrace)) {
    assert!(
        matches!(prop, Propagation::Push | Propagation::Pull),
        "MIS supports no dynamic direction policy: use Push or Pull"
    );
    let n = graph.num_vertices();
    let (mut space, arrays) = GraphArrays::workspace(graph);
    let status = space.array("status", n as u64);
    let prio = space.array("prio", n as u64);
    let agg = space.array("prio_agg", n as u64);

    let snaps = rounds(graph);
    let mut before = vec![Status::Undecided; n as usize];

    for after in snaps.iter().take(MAX_ROUNDS as usize) {
        match prop {
            Propagation::Push => {
                // Scatter: each undecided source pushes its priority
                // into its neighbors' max-aggregates with one
                // fire-and-forget atomic per edge (idempotent for
                // decided targets, so no blocking predicate load sits in
                // the inner loop).
                let scatter = vertex_kernel(n, tb_size, |s, ops| {
                    ops.push(MicroOp::load(status.addr(s as u64)));
                    if before[s as usize] != Status::Undecided {
                        return;
                    }
                    ops.push(MicroOp::load(prio.addr(s as u64)));
                    for e in graph.edge_range(s) {
                        arrays.load_edge_target(e as u64, ops);
                        let t = graph.col_idx()[e as usize];
                        ops.push(MicroOp::atomic(agg.addr(t as u64)));
                    }
                });
                run(scatter);
                // Decide: compare own priority to the aggregate; the
                // (few) winners join the set and knock their neighbors
                // out with fire-and-forget atomics.
                let decide = vertex_kernel(n, tb_size, |v, ops| {
                    ops.push(MicroOp::load(status.addr(v as u64)));
                    if before[v as usize] != Status::Undecided {
                        return;
                    }
                    ops.push(MicroOp::load(agg.addr(v as u64)));
                    ops.push(MicroOp::load(prio.addr(v as u64)));
                    ops.push(MicroOp::compute(1));
                    ops.push(MicroOp::store(agg.addr(v as u64))); // reset
                    if after[v as usize] == Status::In {
                        ops.push(MicroOp::store(status.addr(v as u64)));
                        for e in graph.edge_range(v) {
                            arrays.load_edge_target(e as u64, ops);
                            let t = graph.col_idx()[e as usize];
                            ops.push(MicroOp::atomic(status.addr(t as u64)));
                        }
                    }
                });
                run(decide);
            }
            Propagation::Pull => {
                // Gather: each undecided target reads its neighbors'
                // packed status+priority words (one blocking sparse load
                // per edge, followed by the data-dependent comparison)
                // and updates only itself — winners join, vertices that
                // saw a winner drop out.
                let gather = vertex_kernel(n, tb_size, |v, ops| {
                    ops.push(MicroOp::load(status.addr(v as u64)));
                    if before[v as usize] != Status::Undecided {
                        return;
                    }
                    ops.push(MicroOp::load(prio.addr(v as u64)));
                    for e in graph.edge_range(v) {
                        arrays.load_edge_target(e as u64, ops);
                        let t = graph.col_idx()[e as usize] as u64;
                        ops.push(MicroOp::load(prio.addr(t)));
                        ops.push(MicroOp::compute(1));
                    }
                    if after[v as usize] != Status::Undecided {
                        ops.push(MicroOp::store(status.addr(v as u64)));
                    }
                });
                run(gather);
            }
            _ => unreachable!("direction filtered by supported_propagations"),
        }
        before.clone_from(after);
    }
}

/// The workload's address map: `(array name, base, bytes)` for every
/// region its kernels touch, in the exact layout `generate` uses
/// (deterministic). Feed these to
/// [`ggs_sim::SimulationBuilder::region`] for per-data-structure
/// attribution.
pub fn memory_map(graph: &Csr) -> Vec<(String, u64, u64)> {
    let mut space = AddressSpace::new(64);
    let _ = GraphArrays::new(&mut space, graph);
    let n = graph.num_vertices() as u64;
    let _ = space.array("status", n);
    let _ = space.array("prio", n);
    let _ = space.array("prio_agg", n);
    space
        .regions()
        .map(|(name, base, bytes)| (name.to_owned(), base, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggs_graph::GraphBuilder;

    fn ring(n: u32) -> Csr {
        GraphBuilder::new(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .symmetric(true)
            .build()
    }

    fn assert_valid_mis(graph: &Csr, status: &[Status]) {
        for v in 0..graph.num_vertices() {
            match status[v as usize] {
                Status::In => {
                    for &t in graph.neighbors(v) {
                        assert_ne!(status[t as usize], Status::In, "adjacent In at {v},{t}");
                    }
                }
                Status::Out => {
                    assert!(
                        graph
                            .neighbors(v)
                            .iter()
                            .any(|&t| status[t as usize] == Status::In),
                        "Out vertex {v} has no In neighbor"
                    );
                }
                Status::Undecided => panic!("vertex {v} left undecided"),
            }
        }
    }

    #[test]
    fn reference_is_valid_on_ring() {
        let g = ring(101);
        assert_valid_mis(&g, &reference(&g));
    }

    #[test]
    fn reference_is_valid_on_star() {
        let g = GraphBuilder::new(20)
            .edges((1..20).map(|i| (0, i)))
            .symmetric(true)
            .build();
        assert_valid_mis(&g, &reference(&g));
    }

    #[test]
    fn isolated_vertices_join_the_set() {
        let g = Csr::from_edges(5, &[]);
        let s = reference(&g);
        assert!(s.iter().all(|&x| x == Status::In));
    }

    #[test]
    fn push_uses_atomics_pull_does_not() {
        let g = ring(64);
        let count = |prop| {
            let mut atomics = 0u64;
            generate(&g, prop, 256, &mut |k| {
                for t in 0..k.num_threads() {
                    atomics += k
                        .thread(t)
                        .iter()
                        .filter(|o| matches!(o, MicroOp::Atomic { .. }))
                        .count() as u64;
                }
            });
            atomics
        };
        assert!(count(Propagation::Push) > 0);
        assert_eq!(count(Propagation::Pull), 0);
    }

    #[test]
    fn decided_vertices_do_one_load_in_later_rounds() {
        let g = ring(64);
        let mut last: Option<KernelTrace> = None;
        generate(&g, Propagation::Pull, 256, &mut |k| last = Some(k));
        let k = last.expect("at least one round");
        // In the final round nearly every vertex is already decided.
        let short = (0..k.num_threads())
            .filter(|&t| k.thread(t).len() == 1)
            .count();
        assert!(short > 32, "short traces: {short}");
    }

    #[test]
    fn push_is_two_kernels_per_round_pull_is_one() {
        let g = ring(64);
        let count = |prop| {
            let mut kernels = 0;
            generate(&g, prop, 256, &mut |_| kernels += 1);
            kernels
        };
        assert_eq!(count(Propagation::Push), 2 * count(Propagation::Pull));
    }
}
