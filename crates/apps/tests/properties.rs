//! Property-based tests of the applications' host references and trace
//! generators on arbitrary graphs.

use proptest::prelude::*;

use ggs_apps::{bc, cc, clr, mis, pr, sssp, AppKind, Workload};
use ggs_graph::{Csr, GraphBuilder};
use ggs_model::Propagation;
use ggs_sim::trace::MicroOp;

/// Strategy: an arbitrary normalized (symmetric, loop-free) graph.
fn graphs(max_v: u32) -> impl Strategy<Value = Csr> {
    (2..=max_v).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 1..400)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).symmetric(true).build())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PageRank: ranks are positive and sum to 1.
    #[test]
    fn pr_ranks_form_a_distribution(g in graphs(256)) {
        let ranks = pr::reference(&g, 15);
        prop_assert!(ranks.iter().all(|&r| r > 0.0));
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    /// SSSP: distances satisfy the relaxation fixpoint — no edge can
    /// still be relaxed, and every reachable non-root vertex has a
    /// predecessor proving its distance.
    #[test]
    fn sssp_is_a_fixpoint(g in graphs(256)) {
        let g = g.with_hashed_weights(16);
        let dist = sssp::reference(&g);
        prop_assert_eq!(dist[0], 0);
        for s in 0..g.num_vertices() {
            if dist[s as usize] == sssp::INF {
                continue;
            }
            let ws = g.edge_weights(s).expect("weighted");
            for (i, &t) in g.neighbors(s).iter().enumerate() {
                prop_assert!(
                    dist[t as usize] <= dist[s as usize].saturating_add(ws[i]),
                    "edge {s}->{t} still relaxable"
                );
            }
        }
        for v in 1..g.num_vertices() {
            let dv = dist[v as usize];
            if dv == sssp::INF {
                continue;
            }
            let witnessed = g.neighbors(v).iter().enumerate().any(|(i, &u)| {
                let w = g.edge_weights(v).expect("weighted")[i];
                dist[u as usize].saturating_add(w) == dv
            });
            prop_assert!(witnessed, "vertex {v} distance {dv} has no witness");
        }
    }

    /// MIS: the result is independent and maximal.
    #[test]
    fn mis_is_independent_and_maximal(g in graphs(256)) {
        let status = mis::reference(&g);
        for v in 0..g.num_vertices() {
            match status[v as usize] {
                mis::Status::In => {
                    prop_assert!(g
                        .neighbors(v)
                        .iter()
                        .all(|&t| status[t as usize] != mis::Status::In));
                }
                mis::Status::Out => {
                    prop_assert!(g
                        .neighbors(v)
                        .iter()
                        .any(|&t| status[t as usize] == mis::Status::In));
                }
                mis::Status::Undecided => prop_assert!(false, "undecided vertex {v}"),
            }
        }
    }

    /// CLR: the coloring is proper and complete.
    #[test]
    fn clr_coloring_is_proper(g in graphs(256)) {
        let colors = clr::reference(&g);
        for (s, t) in g.edges() {
            prop_assert_ne!(colors[s as usize], clr::UNCOLORED);
            prop_assert_ne!(colors[s as usize], colors[t as usize]);
        }
    }

    /// BC: scores are non-negative and zero on vertices unreachable
    /// from the root.
    #[test]
    fn bc_scores_are_sane(g in graphs(256)) {
        let scores = bc::reference(&g);
        let dist = sssp::reference(&g); // unit weights: BFS distances
        for v in 0..g.num_vertices() {
            prop_assert!(scores[v as usize] >= 0.0);
            if dist[v as usize] == sssp::INF && v != 0 {
                prop_assert_eq!(scores[v as usize], 0.0);
            }
        }
    }

    /// CC: two vertices share a label iff they share an edge-connected
    /// component (checked against a BFS labelling).
    #[test]
    fn cc_matches_bfs_components(g in graphs(256)) {
        let labels = cc::reference(&g);
        let n = g.num_vertices();
        let mut bfs = vec![u32::MAX; n as usize];
        for root in 0..n {
            if bfs[root as usize] != u32::MAX {
                continue;
            }
            let mut stack = vec![root];
            bfs[root as usize] = root;
            while let Some(v) = stack.pop() {
                for &t in g.neighbors(v) {
                    if bfs[t as usize] == u32::MAX {
                        bfs[t as usize] = root;
                        stack.push(t);
                    }
                }
            }
        }
        for a in 0..n {
            for &b in g.neighbors(a) {
                prop_assert_eq!(labels[a as usize], labels[b as usize]);
            }
        }
        // Distinct BFS components never share a CC label.
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                if bfs[a] != bfs[b] {
                    prop_assert_ne!(labels[a], labels[b]);
                }
            }
        }
    }

    /// Trace invariants: pull variants never emit atomics; push relax
    /// kernels emit no plain stores of remote properties during the edge
    /// loop; every generated address is line-aligned to a word.
    #[test]
    fn trace_invariants(g in graphs(128)) {
        let g = g.with_hashed_weights(8);
        for app in AppKind::ALL {
            for &prop in app.supported_propagations() {
                Workload::new(app, &g).generate(prop, 256, &mut |k| {
                    for t in 0..k.num_threads() {
                        for op in k.thread(t) {
                            if let Some(addr) = op.address() {
                                assert_eq!(addr % 4, 0, "{app}/{prop}: unaligned");
                            }
                            if prop == Propagation::Pull {
                                assert!(
                                    !matches!(op, MicroOp::Atomic { .. }),
                                    "{app}: pull must not use atomics"
                                );
                            }
                        }
                    }
                });
            }
        }
    }

    /// Every address a kernel touches falls inside the app's declared
    /// memory map (the GSI-style attribution regions are complete).
    #[test]
    fn memory_map_covers_every_access(g in graphs(128)) {
        let g = g.with_hashed_weights(8);
        for app in AppKind::ALL.into_iter().chain(AppKind::EXTENDED) {
            let map = Workload::new(app, &g).memory_map();
            let covered = |addr: u64| {
                map.iter().any(|(_, base, bytes)| addr >= *base && addr < base + bytes)
            };
            for &prop in app.supported_propagations() {
                Workload::new(app, &g).generate(prop, 256, &mut |k| {
                    for t in 0..k.num_threads() {
                        for op in k.thread(t) {
                            if let Some(addr) = op.address() {
                                assert!(
                                    covered(addr),
                                    "{app}/{prop}: address {addr:#x} outside memory map"
                                );
                            }
                        }
                    }
                });
            }
        }
    }

    /// Kernel counts are deterministic per (app, variant, graph).
    #[test]
    fn generation_is_deterministic(g in graphs(128)) {
        let g = g.with_hashed_weights(8);
        for app in AppKind::ALL {
            for &prop in app.supported_propagations() {
                let collect = || {
                    let mut kernels = Vec::new();
                    Workload::new(app, &g).generate(prop, 256, &mut |k| {
                        kernels.push(k.total_ops());
                    });
                    kernels
                };
                prop_assert_eq!(collect(), collect());
            }
        }
    }
}
