//! GSI-style per-data-structure attribution: which arrays a workload's
//! memory accesses and latency actually go to, under each configuration.
//! (The paper's stall methodology builds on the GPU Stall Inspector of
//! Alsop et al., ISPASS 2016 — this is the data-structure view.)
//!
//! ```text
//! cargo run --release --example region_profile -- PR EML SGR
//! ```

use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args.next().unwrap_or_else(|| "PR".into()).parse()?;
    let preset: GraphPreset = args.next().unwrap_or_else(|| "EML".into()).parse()?;
    let config: SystemConfig = args.next().unwrap_or_else(|| "SGR".into()).parse()?;
    let scale = 0.125;

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::builder().scale(scale).build()?;
    let (stats, regions) = run_workload_profiled_traced(app, &graph, config, &spec, Tracer::off())?;

    println!(
        "{app} on {preset} under {config}: {} cycles total",
        stats.total_cycles()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "array", "loads", "stores", "atomics", "L1 hit%", "avg lat"
    );
    for (name, s) in &regions {
        if s.accesses() == 0 {
            continue;
        }
        let hit = if s.loads > 0 {
            100.0 * s.l1_hits as f64 / s.loads as f64
        } else {
            0.0
        };
        println!(
            "{name:>10} {:>10} {:>10} {:>10} {hit:>8.1} {:>9.1}",
            s.loads,
            s.stores,
            s.atomics,
            s.avg_latency()
        );
    }
    Ok(())
}
