//! Capture a full instrumentation trace of one workload and write it as
//! Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. See docs/observability.md for the event schema.
//!
//! ```text
//! cargo run --release --example trace_workload -- PR OLS SGR trace.json
//! ```

use std::io::BufWriter;

use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args.next().unwrap_or_else(|| "PR".into()).parse()?;
    let preset: GraphPreset = args.next().unwrap_or_else(|| "OLS".into()).parse()?;
    let config: SystemConfig = args.next().unwrap_or_else(|| "SGR".into()).parse()?;
    let path = args.next().unwrap_or_else(|| "trace.json".into());
    let scale = 0.05;

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::builder().scale(scale).build()?;

    let sink = ChromeTraceSink::new(BufWriter::new(std::fs::File::create(&path)?));
    // Stride 500: at most one stall sample per SM per 500 cycles.
    let stats = run_workload_traced(app, &graph, config, &spec, Tracer::new(&sink, 500))?;
    sink.finish()?;

    println!(
        "{app} on {preset} under {config}: {} cycles, trace written to {path}",
        stats.total_cycles()
    );
    Ok(())
}
