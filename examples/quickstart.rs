//! Quickstart: build a graph, let the specialization model pick a
//! system configuration, and simulate the workload end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    // 1. Build an input graph (here: a ring plus random chords — any
    //    directed symmetric graph works; see `ggs_graph::synth` for
    //    stand-ins of the paper's SuiteSparse inputs and
    //    `ggs_graph::mtx` to load Matrix Market files).
    let n = 4096u32;
    let graph = GraphBuilder::new(n)
        .edges((0..n).map(|i| (i, (i + 1) % n)))
        .edges(
            (0..n)
                .map(|i| (i, (i * 131 + 7) % n))
                .filter(|&(a, b)| a != b),
        )
        .symmetric(true)
        .try_build()?;
    println!(
        "graph: {} vertices, {} directed edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Measure its structural profile (volume / reuse / imbalance) and
    //    ask the paper's decision tree for the best configuration.
    let spec = ExperimentSpec::builder().scale(0.05).build()?;
    let profile = GraphProfile::measure(&graph, &spec.metric_params());
    println!(
        "profile: volume {:.1} KB ({}), reuse {:.3} ({}), imbalance {:.3} ({})",
        profile.volume_kb,
        profile.volume.letter(),
        profile.reuse,
        profile.reuse_class.letter(),
        profile.imbalance,
        profile.imbalance_class.letter(),
    );

    let app = AppKind::Pr;
    let config = predict_full(&app.algo_profile(), &profile);
    println!("model recommends {config} for {app}");

    // 3. Simulate the workload under that configuration.
    let stats = run_workload_traced(app, &graph, config, &spec, Tracer::off())?;
    println!(
        "simulated {} kernels in {} GPU cycles",
        stats.kernels,
        stats.total_cycles()
    );
    for (class, frac) in stats.stall_fractions() {
        println!("  {class:>4}: {:5.1}%", frac * 100.0);
    }
    Ok(())
}
