//! Predict the best system configuration for every application on a
//! given input — the software-designer workflow of §IV: decide push vs.
//! pull and the consistency model before writing the kernel, and tell
//! flexible hardware (e.g. Spandex) which coherence to configure.
//!
//! ```text
//! cargo run --release --example predict_config -- RAJ
//! cargo run --release --example predict_config -- path/to/graph.mtx
//! ```

use std::fs::File;
use std::io::BufReader;

use ggs_graph::mtx;
use ggs_model::MetricParams;
use gpu_graph_spec::prelude::*;

fn load(arg: &str) -> Result<(String, Csr, MetricParams), GgsError> {
    if let Ok(preset) = arg.parse::<GraphPreset>() {
        // Scaled-down synthetic stand-in with matching cache scaling.
        let scale = 0.125;
        let graph = SynthConfig::preset(preset).scale(scale).generate();
        let params = MetricParams::default().scaled_caches(scale);
        Ok((
            format!("{preset} (synthetic, scale {scale})"),
            graph,
            params,
        ))
    } else {
        let file = File::open(arg)?;
        let graph = mtx::read_mtx(BufReader::new(file))?;
        Ok((arg.to_owned(), graph, MetricParams::default()))
    }
}

fn main() -> Result<(), GgsError> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "RAJ".to_owned());
    let (name, graph, params) = load(&arg).unwrap_or_else(|e| {
        eprintln!("predict_config: cannot load {arg}: {e}");
        std::process::exit(2);
    });
    let profile = GraphProfile::measure(&graph, &params);

    println!("input: {name}");
    println!(
        "  |V| = {}, |E| = {}, degrees {}",
        profile.vertices, profile.edges, profile.degrees
    );
    println!(
        "  volume {:.1} KB ({}), ANL {:.2}, ANR {:.2}, reuse {:.3} ({}), imbalance {:.3} ({})",
        profile.volume_kb,
        profile.volume.letter(),
        profile.anl,
        profile.anr,
        profile.reuse,
        profile.reuse_class.letter(),
        profile.imbalance,
        profile.imbalance_class.letter(),
    );
    println!();
    println!(
        "{:6} {:>10} {:>22}",
        "app", "full model", "without DRFrlx (§IV-B)"
    );
    for app in AppKind::ALL {
        let algo = app.algo_profile();
        println!(
            "{:6} {:>10} {:>22}",
            app.mnemonic(),
            predict_full(&algo, &profile).code(),
            predict_partial(&algo, &profile).code(),
        );
    }
    Ok(())
}
