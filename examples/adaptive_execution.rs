//! Per-kernel adaptive hardware selection (the paper's §VIII outlook)
//! versus the static model's single choice.
//!
//! The propagation variant stays fixed (it is compiled into the
//! kernel); the coherence/consistency point is re-derived before every
//! launch from the kernel's actual footprint and warp-work imbalance,
//! then applied through the simulator's flexible-hardware hook.
//!
//! ```text
//! cargo run --release --example adaptive_execution -- SSSP EML
//! ```

use ggs_core::adaptive::run_adaptive;
use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args.next().unwrap_or_else(|| "SSSP".into()).parse()?;
    let preset: GraphPreset = args.next().unwrap_or_else(|| "EML".into()).parse()?;
    let scale = 0.125;

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::builder().scale(scale).build()?;

    let adaptive = run_adaptive(app, &graph, &spec);
    let static_stats =
        run_workload_traced(app, &graph, adaptive.static_config, &spec, Tracer::off())?;

    println!("{app} on {preset} (scale {scale})");
    println!(
        "static model choice: {} -> {} cycles",
        adaptive.static_config,
        static_stats.total_cycles()
    );
    println!(
        "adaptive (same propagation, per-kernel hardware) -> {} cycles",
        adaptive.stats.total_cycles()
    );
    let mut schedule = String::new();
    for hw in &adaptive.schedule {
        schedule.push_str(&hw.code());
        schedule.push(' ');
    }
    println!("per-kernel hardware schedule: {schedule}");
    let delta = 1.0 - adaptive.stats.total_cycles() as f64 / static_stats.total_cycles() as f64;
    println!("adaptation delta vs static choice: {:+.1}%", delta * 100.0);
    Ok(())
}
