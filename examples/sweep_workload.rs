//! Sweep one workload across the full design space and compare against
//! the model's prediction — one group of the paper's Figure 5, but over
//! all 12 configurations instead of the 5 shown.
//!
//! ```text
//! cargo run --release --example sweep_workload -- SSSP RAJ 0.125
//! ```

use ggs_apps::AppKind;
use ggs_core::experiment::ExperimentSpec;
use ggs_core::sweep::{baseline_config, WorkloadSweep};
use ggs_graph::synth::{GraphPreset, SynthConfig};
use ggs_model::{predict_full, GraphProfile, SystemConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args
        .next()
        .unwrap_or_else(|| "SSSP".into())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let preset: GraphPreset = args
        .next()
        .unwrap_or_else(|| "RAJ".into())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.125);

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::at_scale(scale);
    let profile = GraphProfile::measure(&graph, &spec.metric_params());
    let predicted = predict_full(&app.algo_profile(), &profile);

    eprintln!(
        "sweeping {app} on {preset} (scale {scale}, classes {})…",
        profile.class_code()
    );
    let configs = SystemConfig::all_for(app.algo_profile().traversal);
    let sweep = WorkloadSweep::run(app, preset.mnemonic(), &graph, &configs, &spec);

    let baseline = baseline_config(app);
    println!("{:>6} {:>12} {:>10}  ", "config", "cycles", "vs base");
    for (config, norm) in sweep.normalized_to(baseline) {
        let cycles = sweep
            .result_for(config)
            .expect("swept")
            .stats
            .total_cycles();
        let mark = match config {
            c if c == sweep.best().config && c == predicted => "<= BEST, predicted",
            c if c == sweep.best().config => "<= BEST",
            c if c == predicted => "<= predicted",
            _ => "",
        };
        println!("{:>6} {cycles:>12} {norm:>9.3}  {mark}", config.code());
    }
    println!(
        "\nmodel prediction {} runs within {:.1}% of the empirical best",
        predicted.code(),
        sweep.slowdown_vs_best(predicted) * 100.0
    );
}
