//! Sweep one workload across the full design space and compare against
//! the model's prediction — one group of the paper's Figure 5, but over
//! all 12 configurations instead of the 5 shown.
//!
//! ```text
//! cargo run --release --example sweep_workload -- SSSP RAJ 0.125
//! ```

use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args.next().unwrap_or_else(|| "SSSP".into()).parse()?;
    let preset: GraphPreset = args.next().unwrap_or_else(|| "RAJ".into()).parse()?;
    let scale: f64 = args
        .next()
        .map(|s| s.parse().unwrap_or_else(|_| die("scale must be a number")))
        .unwrap_or(0.125);

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::builder().scale(scale).build()?;
    let profile = GraphProfile::measure(&graph, &spec.metric_params());
    let predicted = predict_full(&app.algo_profile(), &profile);

    eprintln!(
        "sweeping {app} on {preset} (scale {scale}, classes {})…",
        profile.class_code()
    );
    let configs = SystemConfig::all_for(app.algo_profile().traversal);
    let sweep = WorkloadSweep::try_run(app, preset.mnemonic(), &graph, &configs, &spec)?;

    let baseline = baseline_config(app);
    let best = sweep
        .try_best()
        .unwrap_or_else(|| die("sweep is empty"))
        .config;
    println!("{:>6} {:>12} {:>10}  ", "config", "cycles", "vs base");
    for (config, norm) in sweep.try_normalized_to(baseline)? {
        let cycles = sweep
            .result_for(config)
            .map(|r| r.stats.total_cycles())
            .unwrap_or(0);
        let mark = match config {
            c if c == best && c == predicted => "<= BEST, predicted",
            c if c == best => "<= BEST",
            c if c == predicted => "<= predicted",
            _ => "",
        };
        println!("{:>6} {cycles:>12} {norm:>9.3}  {mark}", config.code());
    }
    println!(
        "\nmodel prediction {} runs within {:.1}% of the empirical best",
        predicted.code(),
        sweep.try_slowdown_vs_best(predicted)? * 100.0
    );
    Ok(())
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
