//! Print the Figure 5 stall breakdown (Busy / Comp / Data / Sync /
//! Idle) for one workload across the Figure 5 configuration set —
//! useful for seeing *why* a configuration wins, not just that it does.
//!
//! ```text
//! cargo run --release --example stall_breakdown -- CC AMZ
//! ```

use gpu_graph_spec::prelude::*;

fn main() -> Result<(), GgsError> {
    let mut args = std::env::args().skip(1);
    let app: AppKind = args.next().unwrap_or_else(|| "CC".into()).parse()?;
    let preset: GraphPreset = args.next().unwrap_or_else(|| "AMZ".into()).parse()?;
    let scale = 0.125;

    let graph = SynthConfig::preset(preset).scale(scale).generate();
    let spec = ExperimentSpec::builder().scale(scale).build()?;

    println!("{app} on {preset} (scale {scale})");
    println!(
        "{:>6} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "config", "cycles", "busy%", "comp%", "data%", "sync%", "idle%"
    );
    for config in figure5_configs(app) {
        let stats = run_workload_traced(app, &graph, config, &spec, Tracer::off())?;
        let f = stats.stall_fractions();
        println!(
            "{:>6} {:>10} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            config.code(),
            stats.total_cycles(),
            f[0].1 * 100.0,
            f[1].1 * 100.0,
            f[2].1 * 100.0,
            f[3].1 * 100.0,
            f[4].1 * 100.0,
        );
    }
    Ok(())
}
