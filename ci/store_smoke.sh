#!/usr/bin/env bash
# Result-store smoke tests (docs/robustness.md, "Result store"):
#
#   1. warm-store re-run performs ZERO simulations (trace-asserted);
#   2. an injected torn write degrades exactly one publish and the
#      next run repairs + back-fills it;
#   3. an injected checksum flip is detected on reload and only the
#      damaged cell re-simulates;
#   4. injected lock-acquire failures are retried to success;
#   5. two concurrent processes sharing one store complete the sweep
#      with NO cell simulated twice.
#
# Asserts on the repro CLI's stable summary lines and on the golden
# JSONL trace schema (tests/golden/trace_schema.txt), not on timing.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=0.004
REPRO=(cargo run --release -q -p ggs-bench --bin repro --)
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Number of ok cell_finish events in a JSONL trace.
count_ok() {
    grep -c '"type":"cell_finish".*"status":"ok"' "$1" || true
}
# One "APP/GRAPH/CONFIG" line per ok cell in a JSONL trace (possibly
# none: a late-starting process can find every cell already done).
ok_keys() {
    { grep '"type":"cell_finish"' "$1" || true; } | { grep '"status":"ok"' || true; } \
        | sed -E 's/.*"app":"([^"]*)".*"graph":"([^"]*)".*"config":"([^"]*)".*/\1\/\2\/\3/'
}

echo "=== 1. warm store: re-run simulates nothing ==="
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/warm.store")
echo "$out" | grep -E "study: [0-9]+ cells — [0-9]+ ok, 0 failed, 0 timeout, 0 skipped"
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/warm.store" \
      --trace-out "$WORK/warm.jsonl")
echo "$out" | grep -E "study: ([0-9]+) cells — 0 ok, 0 failed, 0 timeout, \1 skipped"
echo "$out" | grep -E "store: [0-9]+ records, 0 corrupt span\(s\) \(0 bytes skipped\)"
test "$(count_ok "$WORK/warm.jsonl")" -eq 0
cells=$(grep -c '"type":"cell_start"' "$WORK/warm.jsonl")
hits=$(grep -c '"type":"store_hit"' "$WORK/warm.jsonl")
test "$hits" -eq "$cells"
echo "ok: $cells cells, $hits store hits, 0 simulations"

echo "=== 2. torn write: detected, repaired, back-filled ==="
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/torn.store" \
      --inject-store-fault torn)
# The torn publish degrades (cell stays ok, result unpersisted) but
# must not fail the study.
echo "$out" | grep -E "study: [0-9]+ cells — [0-9]+ ok, 0 failed, 0 timeout, 0 skipped"
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/torn.store" --store-compact)
# Exactly the unpersisted cell re-simulates; the rest are store hits.
echo "$out" | grep -E "study: [0-9]+ cells — 1 ok, 0 failed, 0 timeout, [0-9]+ skipped"
echo "$out" | grep -E "store: [0-9]+ records,"
echo "$out" | grep -E "store compacted: kept [0-9]+ result\(s\),"

echo "=== 3. checksum flip: detected, only the damaged cell re-runs ==="
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/crc.store" \
      --inject-store-fault crc)
echo "$out" | grep -E "study: [0-9]+ cells — [0-9]+ ok, 0 failed, 0 timeout, 0 skipped"
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/crc.store")
echo "$out" | grep -E "study: [0-9]+ cells — 1 ok, 0 failed, 0 timeout, [0-9]+ skipped"

echo "=== 4. lock-acquire failures: retried to success ==="
out=$("${REPRO[@]}" study --scale "$SCALE" --store "$WORK/lock.store" \
      --inject-store-fault lock)
echo "$out" | grep -E "study: [0-9]+ cells — [0-9]+ ok, 0 failed, 0 timeout, 0 skipped"

echo "=== 5. two concurrent processes: no cell simulated twice ==="
# A small lease TTL keeps the failsafe wait bounded if one process is
# scheduled away while holding leases.
"${REPRO[@]}" study --scale "$SCALE" --store "$WORK/shared.store" \
    --lease-ttl-ms 2000 --trace-out "$WORK/proc-a.jsonl" &
pid_a=$!
"${REPRO[@]}" study --scale "$SCALE" --store "$WORK/shared.store" \
    --lease-ttl-ms 2000 --trace-out "$WORK/proc-b.jsonl" &
pid_b=$!
wait "$pid_a"
wait "$pid_b"
ok_keys "$WORK/proc-a.jsonl" > "$WORK/keys-a"
ok_keys "$WORK/proc-b.jsonl" > "$WORK/keys-b"
dups=$(sort "$WORK/keys-a" "$WORK/keys-b" | uniq -d)
if [ -n "$dups" ]; then
    echo "cells simulated twice:"
    echo "$dups"
    exit 1
fi
total=$(grep -c '"type":"cell_start"' "$WORK/proc-a.jsonl")
simulated=$(sort -u "$WORK/keys-a" "$WORK/keys-b" | wc -l)
test "$simulated" -eq "$total"
echo "ok: $total cells split across two processes, zero duplicates"

echo "store smoke: all checks passed"
