#!/usr/bin/env bash
# Panic hygiene gate for the library crates.
#
# Scans the non-test portion of every source file in the workspace's
# library crates (ggs-graph, ggs-sim, ggs-model, ggs-core, ggs-trace,
# ggs-check, ggs-apps, ggs-verify, ggs-bench) for panic sites
# (`.unwrap()`, `.expect(`, `panic!(`, `unreachable!(`) and for
# unfinished-code markers (`todo!(`, `unimplemented!(`), which are never
# acceptable outside tests. Scanning stops at the first `#[cfg(test` in
# each file, so unit tests may panic freely. Lines that are pure `//`
# comments are ignored, as is anything matching a substring in
# ci/panic-allowlist.txt (internal invariants with descriptive messages
# and the documented panicking wrappers — see docs/api.md).
#
# The vendored shim crates (shim-criterion, shim-proptest, shim-rand)
# are test infrastructure by definition and are not scanned.
#
# Bare `assert!`/`assert_eq!` are deliberately allowed: they express
# internal invariants, and converting them would hide bugs, not report
# errors.
set -euo pipefail

cd "$(dirname "$0")/.."
allowlist=ci/panic-allowlist.txt
crates="graph sim model core trace check apps verify bench"

fail=0
for crate in $crates; do
    for file in $(find "crates/$crate/src" -name '*.rs' | sort); do
        hits=$(awk '
            /#\[cfg\(test/ { exit }
            /^[[:space:]]*\/\// { next }
            /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\(/ {
                printf "%s:%d: %s\n", FILENAME, FNR, $0
            }
        ' "$file")
        [ -z "$hits" ] && continue
        while IFS= read -r hit; do
            allowed=0
            while IFS= read -r pat; do
                case "$pat" in ''|'#'*) continue ;; esac
                case "$hit" in *"$pat"*) allowed=1; break ;; esac
            done < "$allowlist"
            if [ "$allowed" -eq 0 ]; then
                echo "PANIC SITE: $hit"
                fail=1
            fi
        done <<< "$hits"
    done
done

if [ "$fail" -ne 0 ]; then
    echo
    echo "Panic sites found outside ci/panic-allowlist.txt." >&2
    echo "Convert them to GgsError (see docs/api.md) or, for genuine" >&2
    echo "internal invariants, add the line's distinctive substring to" >&2
    echo "the allowlist with a justification comment. todo!() and" >&2
    echo "unimplemented!() are never allowed outside tests." >&2
    exit 1
fi
echo "panic check: clean (crates: $crates)"
