#!/usr/bin/env bash
# Deprecation-shim gate for the Simulation builder API.
#
# `Simulation::with_tracer`, `Simulation::set_budget`, and
# `Simulation::register_region` survive only as `#[deprecated]` shims
# over `Simulation::builder` (see docs/api.md).  Clippy's `-D warnings`
# already rejects *compiled* uses of deprecated items; this grep also
# keeps them out of doc comments, markdown, and anything behind a
# `#[allow(deprecated)]` that is not the shims' own coverage test.
#
# Allowed locations:
#   - crates/sim/src/engine.rs        (the definitions and their test)
#   - docs/api.md                     (the migration table)
#   - this script
#
# `Sm::with_tracer` and `MemorySystem::with_tracer`/`register_region`/
# `debug_*` are unrelated crate-internal constructors and plumbing the
# DebugHooks handle delegates to, so only `Simulation::`-qualified paths
# and `sim.`-receiver calls are matched.
set -euo pipefail

cd "$(dirname "$0")/.."

pattern='Simulation::with_tracer|Simulation::set_budget|Simulation::register_region|Simulation::debug_force_owned|Simulation::debug_skip_next_invalidation|sim\.set_budget\(|sim\.register_region\(|sim\.debug_force_owned\(|sim\.debug_skip_next_invalidation\('

hits=$(grep -rnE "$pattern" \
        --include='*.rs' --include='*.md' \
        crates src tests benches docs README.md DESIGN.md 2>/dev/null |
    grep -v '^crates/sim/src/engine.rs:' |
    grep -v '^docs/api.md:' || true)

if [ -n "$hits" ]; then
    echo "Deprecated Simulation shims referenced outside engine.rs / docs/api.md:"
    echo "$hits"
    echo
    echo "Use Simulation::builder(params, hw).tracer(..).budget(..)" >&2
    echo ".region(..).build() instead; fault injectors live on" >&2
    echo "sim.debug_hooks() (check feature). See docs/api.md." >&2
    exit 1
fi
echo "deprecated-shim check: clean"
